// Package router implements the full simulated router of the paper's
// framework: an MPDA protocol instance for loop-free multipath routes, the
// IH/AH traffic-allocation heuristics, two-timescale link-cost measurement,
// and the forwarding plane, all driven by the discrete-event engine.
//
// Section 4.2 of the paper: "link costs measured over short intervals of
// length Ts are used for routing-parameter computation and link costs
// measured over longer intervals of length Tl are used for routing-path
// computation. [...] Tl and Ts are local constants that are set
// independently at each router" — here each node owns its own timers, with
// randomly phased long-term updates "because of the problems that would
// result due to synchronization of updates".
//
// Three forwarding modes reproduce the paper's three schemes:
//
//	ModeMP     multipath over S_j with IH/AH routing parameters
//	ModeSP     single path: all traffic to the best successor
//	ModeStatic externally installed routing parameters (used to evaluate
//	           Gallager's OPT solution under identical packet dynamics)
package router

import (
	"fmt"
	"math"

	"minroute/internal/alloc"
	"minroute/internal/des"
	"minroute/internal/eventq"
	"minroute/internal/graph"
	"minroute/internal/linkcost"
	"minroute/internal/lsu"
	"minroute/internal/mpda"
	"minroute/internal/numeric"
	"minroute/internal/rng"
	"minroute/internal/telemetry"
)

// Mode selects the forwarding discipline.
type Mode int

// Forwarding modes.
const (
	ModeMP Mode = iota
	ModeSP
	ModeStatic
	// ModeECMP restricts multipath to equal-cost paths with even splits —
	// the OSPF behaviour the paper contrasts against ("OSPF permits
	// multiple paths to a destination only when they have the same
	// length"). Included as an extra baseline for ablations.
	ModeECMP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeMP:
		return "MP"
	case ModeSP:
		return "SP"
	case ModeStatic:
		return "STATIC"
	case ModeECMP:
		return "ECMP"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config tunes a Node. The zero value is not valid; use Defaults.
type Config struct {
	Mode Mode
	// Tl is the long-term (routing path) update interval in seconds.
	Tl float64
	// Ts is the short-term (routing parameter) update interval in seconds.
	Ts float64
	// MeanPacketBits calibrates packet-rate conversions for the M/M/1 cost.
	MeanPacketBits float64
	// QueueBits bounds each output port's data band.
	QueueBits float64
	// CostSmoothing is the EWMA weight folding each Tl window's measured
	// marginal into the advertised long-term cost.
	CostSmoothing float64
	// UseOnlineEstimator selects the PA-style estimator (measured sojourn
	// and service times) instead of the closed-form M/M/1 marginal.
	UseOnlineEstimator bool
	// HopLimit drops packets that exceed this many forwarding steps.
	HopLimit int
	// FlowletTimeout, when positive, pins each flow to its current next hop
	// and re-randomizes only after the flow pauses for at least this long
	// (flowlet switching). Bursts within a flowlet stay on one path, which
	// eliminates almost all reordering while idle gaps still re-balance
	// load. Applies to ModeMP only.
	FlowletTimeout float64
	// AdaptiveTimers lets the measurement intervals vary with congestion,
	// as the paper suggests ("Tl and Ts need not be static constants and
	// can be made to vary according to congestion at the router"): when
	// short-term costs churn, Ts shrinks toward Ts/2 for faster balancing;
	// when they are stable it stretches toward 2Ts. Tl adapts the same way
	// against advertised-cost changes. Both stay within [x/2, 2x].
	AdaptiveTimers bool
	// AHDamping selects the damped AH variant with the given β (see
	// alloc.AdjustDamped). Zero or negative selects the literal Fig. 7
	// rule (alloc.Adjust), kept for ablation.
	AHDamping float64
	// ShortCostSmoothing is the EWMA weight for short-term cost samples;
	// 1 uses each Ts window's measurement raw.
	ShortCostSmoothing float64
	// CostMeasureWindow, when positive and smaller than Tl, measures the
	// long-term link flow over only the trailing window of each Tl period
	// instead of the whole period (ARPANET-style fixed measurement window:
	// the update period then controls staleness only, not averaging).
	CostMeasureWindow float64
	// CostUtilizationCap bounds the utilization used when computing link
	// costs. The raw M/M/1 marginal explodes near saturation (seconds per
	// packet against an idle cost under a millisecond), which turns any
	// momentarily hot link infinitely repulsive and induces the classic
	// delay-metric route oscillation; the revised-ARPANET-metric line of
	// work the paper cites ([18], [13]) bounds the metric's dynamic range
	// for exactly this reason. 0.9 caps the advertised marginal at ~100x
	// idle. Set >= linkcost.MaxUtilization to disable.
	CostUtilizationCap float64
}

// Defaults returns the configuration used by the paper's headline runs:
// MP-TL-10-TS-2 with 1000-byte mean packets.
func Defaults() Config {
	return Config{
		Mode:           ModeMP,
		Tl:             10,
		Ts:             2,
		MeanPacketBits: 8000,
		QueueBits:      des.DefaultQueueBits,
		CostSmoothing:  0.5,
		HopLimit:       64,
		AHDamping:      0.5,

		ShortCostSmoothing: 0.5,
		CostUtilizationCap: 0.9,
	}
}

// Node is one simulated router.
type Node struct {
	id       graph.NodeID
	eng      *des.Engine
	cfg      Config
	prng     *rng.Source
	numNodes int
	send     mpda.Sender

	proto *mpda.Router
	ports map[graph.NodeID]*des.Port
	// down is true between Crash and Restart: the node forwards nothing,
	// processes no control traffic, and its timers are disarmed.
	down bool
	// Pending timer handles, canceled on Crash so a restarted node never
	// runs two timer chains.
	tsTimer, tlTimer, tlSnapTimer eventq.Handle
	// nbrs lists attached neighbors in ascending order; all periodic work
	// iterates it (never the port map) so FP effects are deterministic.
	nbrs []graph.NodeID

	// Short-term marginal link costs, refreshed every Ts.
	shortCost map[graph.NodeID]float64
	// Long-term cost EWMAs, advertised to MPDA every Tl.
	longCost map[graph.NodeID]*linkcost.Smoother
	// Snapshots of cumulative port counters for windowed rates.
	tsSnap map[graph.NodeID]portSnap
	tlSnap map[graph.NodeID]portSnap
	// lastTl is when the previous long-term measurement window started.
	lastTl float64
	// lastTsChurn / lastTlChurn record the largest relative cost change in
	// the previous measurement round (adaptive-timer input).
	lastTsChurn float64
	lastTlChurn float64

	// phi[j] holds the current routing parameters for destination j.
	phi []alloc.Params
	// succSig[j] fingerprints the successor set used to build phi[j].
	succSig []string

	// staticPhi, in ModeStatic, holds the externally installed parameters.
	staticPhi []alloc.Params

	// flowlets tracks, per flow ID, the pinned next hop and last-seen time
	// for flowlet switching.
	flowlets map[int]*flowletState

	// OnArrive is invoked for every data packet whose destination is this
	// node (set by the network assembly).
	OnArrive func(pkt *des.Packet)
	// OnForward, when set, observes every forwarding decision (packet and
	// chosen next hop) before transmission; the path tracer hooks here.
	OnForward func(pkt *des.Packet, next graph.NodeID)
	// OnAlloc, when set, observes every routing-parameter step — each IH
	// build and each AH adjustment — with the destination, the parameters
	// just produced, and the successor set they must cover. The φ-simplex
	// oracle (Property 1: support ⊆ S_j, φ ≥ 0, Σφ = 1) hooks here.
	OnAlloc func(j graph.NodeID, phi alloc.Params, succ []graph.NodeID)

	// tel, when non-nil, instruments the control plane: phase spans, LSU
	// receive/ack events, table commits, allocation steps, and drop
	// instants. Installed via SetTelemetry; chaos oracles keep OnAlloc to
	// themselves, so telemetry emits from inside the node instead.
	tel *telemetry.NodeProbes
	// activeSince is when the router last entered the ACTIVE phase; the
	// PASSIVE edge carries the span duration.
	activeSince float64

	// Counters.
	ForwardedPackets int64
	DroppedNoRoute   int64
	DroppedHopLimit  int64
	DroppedQueue     int64
	// DroppedDown counts data packets that reached the node while it was
	// crashed. Control packets a crashed node ignores are not counted: the
	// conservation ledger balances data traffic only, and control-plane loss
	// at a dead node is just protocol noise.
	DroppedDown int64
}

type portSnap struct {
	packets int64
	bits    float64
}

type flowletState struct {
	next graph.NodeID
	last float64
}

// New constructs a node. Ports must be attached before Start.
func New(eng *des.Engine, id graph.NodeID, numNodes int, cfg Config, sendLSU mpda.Sender) *Node {
	n := &Node{
		id:        id,
		eng:       eng,
		cfg:       cfg,
		prng:      eng.RNG().Split(uint64(id) + 1000),
		numNodes:  numNodes,
		send:      sendLSU,
		proto:     mpda.NewRouter(id, numNodes, sendLSU),
		ports:     make(map[graph.NodeID]*des.Port),
		shortCost: make(map[graph.NodeID]float64),
		longCost:  make(map[graph.NodeID]*linkcost.Smoother),
		tsSnap:    make(map[graph.NodeID]portSnap),
		tlSnap:    make(map[graph.NodeID]portSnap),
		phi:       make([]alloc.Params, numNodes),
		succSig:   make([]string, numNodes),
		flowlets:  make(map[int]*flowletState),
	}
	return n
}

// ID returns the node's address.
func (n *Node) ID() graph.NodeID { return n.id }

// Protocol exposes the MPDA instance (for invariant checks and inspection).
func (n *Node) Protocol() *mpda.Router { return n.proto }

// AttachPort registers the outgoing port toward neighbor k.
func (n *Node) AttachPort(k graph.NodeID, p *des.Port) {
	if _, dup := n.ports[k]; !dup {
		i := 0
		for i < len(n.nbrs) && n.nbrs[i] < k {
			i++
		}
		n.nbrs = append(n.nbrs, 0)
		copy(n.nbrs[i+1:], n.nbrs[i:])
		n.nbrs[i] = k
	}
	n.ports[k] = p
	if n.cfg.UseOnlineEstimator {
		mu := linkcost.KnownMu(p.Capacity, n.cfg.MeanPacketBits)
		p.Estimator = linkcost.NewOnlineEstimator(p.Prop, 1/mu)
	}
}

// InstallStatic installs fixed routing parameters for ModeStatic. phi[j]
// holds the fractions this node uses toward destination j.
func (n *Node) InstallStatic(phi []alloc.Params) { n.staticPhi = phi }

// SetTelemetry attaches control-plane instrumentation (shared by all nodes
// of a simulation). Call before Start.
func (n *Node) SetTelemetry(tp *telemetry.NodeProbes) {
	n.tel = tp
	n.installProtoHooks()
}

// installProtoHooks wires the MPDA observer hooks to the telemetry sink.
// Restart builds a fresh protocol instance, so it must re-install them.
func (n *Node) installProtoHooks() {
	if n.tel == nil {
		return
	}
	n.proto.OnPhase = func(active bool) {
		now := n.eng.Now()
		if active {
			n.activeSince = now
			n.tel.Tracer.Emit(telemetry.NewEvent(now, telemetry.KindPhaseActive, n.id))
			return
		}
		ev := telemetry.NewEvent(now, telemetry.KindPhasePassive, n.id)
		ev.Value = now - n.activeSince
		n.tel.Tracer.Emit(ev)
		n.tel.ActiveDur.ObserveSlot(int(n.id), now, ev.Value)
	}
	n.proto.OnCommit = func(changed int) {
		now := n.eng.Now()
		ev := telemetry.NewEvent(now, telemetry.KindTableCommit, n.id)
		ev.Value = float64(changed)
		n.tel.Tracer.Emit(ev)
		n.tel.Converge.CommitSlot(int(n.id), now)
	}
}

// emitAlloc traces one routing-parameter step for destination j; Value is
// the allocation spread (0 = single path).
func (n *Node) emitAlloc(k telemetry.Kind, j graph.NodeID, phi alloc.Params) {
	if n.tel == nil {
		return
	}
	ev := telemetry.NewEvent(n.eng.Now(), k, n.id)
	ev.Dst = j
	ev.Value = alloc.Spread(phi)
	n.tel.Tracer.Emit(ev)
}

// emitDrop traces one dropped data packet.
func (n *Node) emitDrop(k telemetry.Kind, pkt *des.Packet) {
	if n.tel == nil {
		return
	}
	ev := telemetry.NewEvent(n.eng.Now(), k, n.id)
	ev.Dst = pkt.Dst
	ev.Flow = int32(pkt.FlowID)
	ev.Value = 1
	n.tel.Tracer.Emit(ev)
}

// Start brings up all adjacent links at their idle costs and schedules the
// measurement timers with random phases.
func (n *Node) Start() {
	// The whole boot sequence runs under the router's own origin priority:
	// Start runs from harness context (boot, or a chaos Restart), and
	// inheriting the harness origin would make the boot emissions and the
	// timer chains' equal-time ordering depend on who restarted the node —
	// and on which shard's tracer recorded it — rather than on the node
	// itself.
	n.eng.WithOrigin(des.PriRouter(uint64(n.id)), func() {
		for _, k := range n.nbrs {
			p := n.ports[k]
			c := n.idleCost(p)
			n.shortCost[k] = c
			sm := linkcost.NewSmoother(n.cfg.CostSmoothing)
			sm.Update(c)
			n.longCost[k] = sm
			n.proto.LinkUp(k, quantizeCost(c))
		}
		n.refreshAllocations()
		if n.cfg.Ts > 0 {
			n.tsTimer = n.eng.After(n.cfg.Ts*n.prng.Float64(), n.tsTick)
		}
		if n.cfg.Tl > 0 {
			// "The long-term update periods should be phased randomly at each
			// router" — first firing lands uniformly inside one Tl period.
			n.tlTimer = n.eng.After(n.cfg.Tl*n.prng.Float64(), n.tlTick)
		}
	})
}

// Crash takes the node down hard: timers are disarmed and all traffic is
// dropped until Restart. The protocol state is abandoned where it stands —
// a restarted router remembers nothing, exactly like a real reboot.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.eng.Cancel(n.tsTimer)
	n.eng.Cancel(n.tlTimer)
	n.eng.Cancel(n.tlSnapTimer)
}

// Restart boots a crashed node from scratch: a fresh MPDA instance, empty
// routing parameters, and measurement windows starting now. Adjacent links
// are announced at their idle costs by the usual Start path; neighbors learn
// of the resurrection through core.RestartNode (LinkRecovered on their side).
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.proto = mpda.NewRouter(n.id, n.numNodes, n.send)
	n.installProtoHooks()
	n.phi = make([]alloc.Params, n.numNodes)
	n.succSig = make([]string, n.numNodes)
	n.flowlets = make(map[int]*flowletState)
	n.shortCost = make(map[graph.NodeID]float64)
	n.longCost = make(map[graph.NodeID]*linkcost.Smoother)
	// Measurement windows must not straddle the outage: snapshot the port
	// counters as they stand so the first post-restart window is clean.
	n.lastTl = n.eng.Now()
	n.lastTsChurn, n.lastTlChurn = 0, 0
	for _, k := range n.nbrs {
		p := n.ports[k]
		snap := portSnap{packets: p.DataPackets, bits: p.DataBits}
		n.tsSnap[k] = snap
		n.tlSnap[k] = snap
	}
	n.Start()
}

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// armTlSnapshot schedules the pre-measurement snapshot when a fixed cost
// window is configured, so tlTick sees only the trailing window of the
// period of the given length.
func (n *Node) armTlSnapshot(period float64) {
	w := n.cfg.CostMeasureWindow
	if w <= 0 || w >= period {
		return
	}
	n.tlSnapTimer = n.eng.After(period-w, func() {
		n.lastTl = n.eng.Now()
		for _, k := range n.nbrs {
			p := n.ports[k]
			n.tlSnap[k] = portSnap{packets: p.DataPackets, bits: p.DataBits}
		}
	})
}

func (n *Node) idleCost(p *des.Port) float64 {
	mu := linkcost.KnownMu(p.Capacity, n.cfg.MeanPacketBits)
	return linkcost.MM1Marginal(0, mu, p.Prop)
}

// quantizeCost rounds to 0.1 µs so identical loads advertise identical
// costs and FP dust cannot force spurious LSU floods.
func quantizeCost(c float64) float64 { return math.Round(c*1e7) / 1e7 }

// tsTick performs the short-term measurement and runs heuristic AH.
func (n *Node) tsTick() {
	churn := 0.0
	for _, k := range n.nbrs {
		p := n.ports[k]
		prev := n.tsSnap[k]
		cur := portSnap{packets: p.DataPackets, bits: p.DataBits}
		n.tsSnap[k] = cur
		lambda := float64(cur.packets-prev.packets) / n.cfg.Ts
		mu := linkcost.KnownMu(p.Capacity, n.cfg.MeanPacketBits)
		var c float64
		if n.cfg.UseOnlineEstimator && p.Estimator != nil {
			c = p.Estimator.Take()
			if cap := n.costCap(mu, p.Prop); c > cap {
				c = cap
			}
		} else {
			if cap := n.cfg.CostUtilizationCap; cap > 0 && lambda > cap*mu {
				lambda = cap * mu
			}
			c = linkcost.MM1Marginal(lambda, mu, p.Prop)
		}
		if old, ok := n.shortCost[k]; ok && old > 0 {
			if rel := math.Abs(c-old) / old; rel > churn {
				churn = rel
			}
		}
		if a := n.cfg.ShortCostSmoothing; a > 0 && a < 1 {
			if prev, ok := n.shortCost[k]; ok {
				c = prev + a*(c-prev)
			}
		}
		n.shortCost[k] = c
		if n.cfg.UseOnlineEstimator {
			// The estimator consumes its window here; fold it into the
			// long-term EWMA since tlTick cannot re-measure it.
			n.longCost[k].Update(c)
		}
	}
	n.lastTsChurn = churn
	if n.cfg.Mode == ModeMP {
		for j := range n.phi {
			if len(n.phi[j]) == 0 {
				continue
			}
			succ := n.proto.Successors(graph.NodeID(j))
			if len(succ) < 2 {
				continue
			}
			if n.cfg.AHDamping > 0 {
				alloc.AdjustDamped(n.phi[j], succ, n.shortDist(graph.NodeID(j)), n.cfg.AHDamping)
			} else {
				alloc.Adjust(n.phi[j], succ, n.shortDist(graph.NodeID(j)))
			}
			if n.OnAlloc != nil {
				n.OnAlloc(graph.NodeID(j), n.phi[j], succ)
			}
			n.emitAlloc(telemetry.KindAllocAdjust, graph.NodeID(j), n.phi[j])
		}
	}
	n.tsTimer = n.eng.After(n.nextTs(), n.tsTick)
}

// nextTs returns the interval to the next short-term tick, adapting it to
// the measured cost churn when AdaptiveTimers is on.
func (n *Node) nextTs() float64 {
	if !n.cfg.AdaptiveTimers {
		return n.cfg.Ts
	}
	churn := n.lastTsChurn
	switch {
	case churn > 0.2:
		return n.cfg.Ts / 2
	case churn < 0.05:
		return n.cfg.Ts * 2
	default:
		return n.cfg.Ts
	}
}

// nextTl adapts the long-term interval to route-affecting cost changes.
func (n *Node) nextTl() float64 {
	if !n.cfg.AdaptiveTimers {
		return n.cfg.Tl
	}
	churn := n.lastTlChurn
	switch {
	case churn > 0.2:
		return n.cfg.Tl / 2
	case churn < 0.05:
		return n.cfg.Tl * 2
	default:
		return n.cfg.Tl
	}
}

// costCap returns the maximum cost the utilization cap allows for a link
// with service rate mu and propagation delay tau.
func (n *Node) costCap(mu, tau float64) float64 {
	cap := n.cfg.CostUtilizationCap
	if cap <= 0 {
		return math.Inf(1)
	}
	return linkcost.MM1Marginal(cap*mu, mu, tau)
}

// shortDist is the AH distance function: D_jk + l_ik with the short-term
// link cost.
func (n *Node) shortDist(j graph.NodeID) alloc.DistFunc {
	return func(k graph.NodeID) float64 {
		c, ok := n.shortCost[k]
		if !ok {
			return math.Inf(1)
		}
		return n.proto.Tables().NbrDist(j, k) + c
	}
}

// tlTick measures each adjacent link's flow over the elapsed long-term
// window ("link costs measured over longer intervals of length Tl are used
// for routing-path computation"), folds it into the advertised-cost EWMA,
// and feeds any changes into MPDA.
func (n *Node) tlTick() {
	elapsed := n.eng.Now() - n.lastTl
	n.lastTl = n.eng.Now()
	churn := 0.0
	for _, k := range n.nbrs {
		p := n.ports[k]
		prev := n.tlSnap[k]
		cur := portSnap{packets: p.DataPackets, bits: p.DataBits}
		n.tlSnap[k] = cur
		if !n.cfg.UseOnlineEstimator && elapsed > 0 {
			lambda := float64(cur.packets-prev.packets) / elapsed
			mu := linkcost.KnownMu(p.Capacity, n.cfg.MeanPacketBits)
			if cap := n.cfg.CostUtilizationCap; cap > 0 && lambda > cap*mu {
				lambda = cap * mu
			}
			n.longCost[k].Update(linkcost.MM1Marginal(lambda, mu, p.Prop))
		}
		c := quantizeCost(n.longCost[k].Value())
		//lint:floateq-ok change detection between quantized costs; quantization makes equality exact
		if cur, ok := n.proto.Tables().AdjCost(k); !ok || cur != c {
			if ok && cur > 0 {
				if rel := math.Abs(c-cur) / cur; rel > churn {
					churn = rel
				}
			}
			n.proto.LinkCostChange(k, c)
		}
	}
	n.lastTlChurn = churn
	n.refreshAllocations()
	next := n.nextTl()
	n.tlTimer = n.eng.After(next, n.tlTick)
	n.armTlSnapshot(next)
}

// HandleControl processes a received control packet (a marshaled LSU).
// Crashed nodes ignore control traffic entirely.
func (n *Node) HandleControl(pkt *des.Packet) {
	if n.down {
		return
	}
	buf, ok := pkt.Control.([]byte)
	if !ok {
		return
	}
	m, err := lsu.Unmarshal(buf)
	if err != nil {
		// A corrupt LSU would violate the reliable-link assumption; surface
		// loudly in simulation rather than limping on.
		panic("router: corrupt LSU: " + err.Error())
	}
	if n.tel != nil {
		now := n.eng.Now()
		ev := telemetry.NewEvent(now, telemetry.KindLSURecv, n.id)
		ev.Peer = m.From
		ev.Value = float64(len(m.Entries))
		n.tel.Tracer.Emit(ev)
		if m.Ack {
			ack := telemetry.NewEvent(now, telemetry.KindLSUAck, n.id)
			ack.Peer = m.From
			n.tel.Tracer.Emit(ack)
		}
	}
	n.proto.HandleLSU(m)
	n.refreshAllocations()
}

// LinkFailed tells the protocol an adjacent link went down. Crashed nodes
// have no protocol to tell.
func (n *Node) LinkFailed(k graph.NodeID) {
	if n.down {
		return
	}
	// Like Start, this is a harness-context entry point (core fault
	// injection): the protocol reaction — LSU floods, table commits, their
	// telemetry — must carry the router's own origin, not the injector's.
	n.eng.WithOrigin(des.PriRouter(uint64(n.id)), func() {
		n.proto.LinkDown(k)
		n.refreshAllocations()
	})
}

// LinkRecovered tells the protocol an adjacent link came back.
func (n *Node) LinkRecovered(k graph.NodeID) {
	if n.down {
		return
	}
	p, ok := n.ports[k]
	if !ok {
		return
	}
	n.eng.WithOrigin(des.PriRouter(uint64(n.id)), func() {
		c := n.idleCost(p)
		n.shortCost[k] = c
		n.longCost[k].Update(c)
		n.proto.LinkUp(k, quantizeCost(c))
		n.refreshAllocations()
	})
}

// refreshAllocations re-runs IH for every destination whose successor set
// changed since its parameters were last built (paper: "When S_j is
// computed for the first time or recomputed again due to long-term route
// changes, traffic should be freshly distributed" by IH).
func (n *Node) refreshAllocations() {
	if n.cfg.Mode != ModeMP {
		return
	}
	for j := range n.phi {
		jid := graph.NodeID(j)
		if jid == n.id {
			continue
		}
		succ := n.proto.Successors(jid)
		sig := succSignature(succ)
		if sig == n.succSig[j] {
			continue
		}
		n.succSig[j] = sig
		if len(succ) == 0 {
			n.phi[j] = nil
		} else {
			n.phi[j] = alloc.Initial(succ, n.shortDist(jid))
		}
		if n.OnAlloc != nil {
			n.OnAlloc(jid, n.phi[j], succ)
		}
		n.emitAlloc(telemetry.KindAllocInit, jid, n.phi[j])
	}
}

func succSignature(succ []graph.NodeID) string {
	if len(succ) == 0 {
		return ""
	}
	b := make([]byte, 0, len(succ)*4)
	for _, k := range succ {
		b = append(b, byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
	}
	return string(b)
}

// HandleData forwards (or delivers) a data packet. The node takes ownership:
// delivered and dropped packets are recycled into the engine's packet pool
// (observers like OnArrive must not retain the pointer past their return).
func (n *Node) HandleData(pkt *des.Packet) {
	if n.down {
		n.DroppedDown++
		n.emitDrop(telemetry.KindDropDown, pkt)
		n.eng.FreePacket(pkt)
		return
	}
	if pkt.Dst == n.id {
		if n.OnArrive != nil {
			n.OnArrive(pkt)
		}
		n.eng.FreePacket(pkt)
		return
	}
	if pkt.Hops >= n.cfg.HopLimit {
		n.DroppedHopLimit++
		n.emitDrop(telemetry.KindDropHopLimit, pkt)
		n.eng.FreePacket(pkt)
		return
	}
	var k graph.NodeID
	if n.cfg.Mode == ModeMP && n.cfg.FlowletTimeout > 0 && pkt.FlowID >= 0 {
		k = n.pickFlowletHop(pkt)
	} else {
		k = n.pickNextHop(pkt.Dst)
	}
	if k == graph.None {
		n.DroppedNoRoute++
		n.emitDrop(telemetry.KindDropNoRoute, pkt)
		n.eng.FreePacket(pkt)
		return
	}
	p, ok := n.ports[k]
	if !ok {
		n.DroppedNoRoute++
		n.emitDrop(telemetry.KindDropNoRoute, pkt)
		n.eng.FreePacket(pkt)
		return
	}
	pkt.Hops++
	if n.OnForward != nil {
		n.OnForward(pkt, k)
	}
	if !p.Send(pkt) {
		n.DroppedQueue++
		n.emitDrop(telemetry.KindDropQueue, pkt)
		n.eng.FreePacket(pkt)
		return
	}
	n.ForwardedPackets++
}

// pickFlowletHop implements flowlet switching: reuse the pinned next hop
// while the flow's inter-packet gap stays under FlowletTimeout; otherwise
// re-pick from the current routing parameters. A pinned hop that left the
// successor set is replaced immediately.
func (n *Node) pickFlowletHop(pkt *des.Packet) graph.NodeID {
	now := n.eng.Now()
	st := n.flowlets[pkt.FlowID]
	if st != nil && now-st.last <= n.cfg.FlowletTimeout {
		if phi := n.phi[pkt.Dst]; phi != nil {
			if v, ok := phi[st.next]; ok && v > 0 {
				st.last = now
				return st.next
			}
		}
	}
	k := n.pickNextHop(pkt.Dst)
	if k == graph.None {
		return k
	}
	if st == nil {
		st = &flowletState{}
		n.flowlets[pkt.FlowID] = st
	}
	st.next = k
	st.last = now
	return k
}

// pickNextHop chooses the outgoing neighbor for destination j under the
// configured mode.
func (n *Node) pickNextHop(j graph.NodeID) graph.NodeID {
	switch n.cfg.Mode {
	case ModeSP:
		return n.proto.BestSuccessor(j)
	case ModeECMP:
		set := n.equalCostSuccessors(j)
		if len(set) == 0 {
			return graph.None
		}
		return set[n.prng.Intn(len(set))]
	case ModeStatic:
		if n.staticPhi == nil {
			return graph.None
		}
		return weightedPick(n.prng, n.staticPhi[j])
	default: // ModeMP
		phi := n.phi[j]
		if len(phi) == 0 {
			// Routes may exist before parameters do (e.g. first packet
			// between refreshes); build them lazily.
			succ := n.proto.Successors(j)
			if len(succ) == 0 {
				return graph.None
			}
			n.phi[j] = alloc.Initial(succ, n.shortDist(j))
			n.succSig[j] = succSignature(succ)
			phi = n.phi[j]
			if n.OnAlloc != nil {
				n.OnAlloc(j, phi, succ)
			}
			n.emitAlloc(telemetry.KindAllocInit, j, phi)
			if len(phi) == 0 {
				return graph.None
			}
		}
		return weightedPick(n.prng, phi)
	}
}

// equalCostSuccessors returns the successors whose marginal distance ties
// the best one (OSPF-style equal-cost multipath).
func (n *Node) equalCostSuccessors(j graph.NodeID) []graph.NodeID {
	succ := n.proto.Successors(j)
	if len(succ) == 0 {
		return nil
	}
	best := math.Inf(1)
	for _, k := range succ {
		if d := n.proto.SuccessorDistance(j, k); d < best {
			best = d
		}
	}
	var out []graph.NodeID
	for _, k := range succ {
		if numeric.Equalish(n.proto.SuccessorDistance(j, k), best) {
			out = append(out, k)
		}
	}
	return out
}

// weightedPick samples a successor proportionally to its fraction.
func weightedPick(r *rng.Source, phi alloc.Params) graph.NodeID {
	if len(phi) == 0 {
		return graph.None
	}
	x := r.Float64()
	acc := 0.0
	keys := phi.Keys()
	for _, k := range keys {
		acc += phi[k]
		if x < acc {
			return k
		}
	}
	// FP remainder: fall back to the last successor with weight.
	for i := len(keys) - 1; i >= 0; i-- {
		if phi[keys[i]] > 0 {
			return keys[i]
		}
	}
	return graph.None
}

// Fractions exposes the current routing parameters for destination j
// (nil when none). Used by audits and tests.
func (n *Node) Fractions(j graph.NodeID) alloc.Params {
	switch n.cfg.Mode {
	case ModeStatic:
		if n.staticPhi == nil {
			return nil
		}
		return n.staticPhi[j]
	case ModeSP:
		if k := n.proto.BestSuccessor(j); k != graph.None {
			return alloc.Single(k)
		}
		return nil
	case ModeECMP:
		return alloc.Uniform(n.equalCostSuccessors(j))
	default:
		return n.phi[j]
	}
}
