package router

import (
	"math"
	"testing"

	"minroute/internal/alloc"
	"minroute/internal/des"
	"minroute/internal/graph"
	"minroute/internal/rng"
)

func TestModeStringECMP(t *testing.T) {
	if got := ModeECMP.String(); got != "ECMP" {
		t.Fatalf("ECMP.String() = %q", got)
	}
}

// TestCrashAndRestart walks a node through the full outage lifecycle: while
// down it drops data, ignores control and link events, and reports Down;
// Restart boots a fresh protocol instance and the network reconverges.
func TestCrashAndRestart(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	mid := nodes[1]
	mid.Crash()
	mid.Crash() // idempotent
	if !mid.Down() {
		t.Fatal("Down() = false after Crash")
	}
	mid.HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 800})
	if mid.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", mid.DroppedDown)
	}
	mid.HandleControl(&des.Packet{Control: []byte{1, 2, 3}}) // ignored, no panic
	mid.LinkFailed(0)                                        // ignored
	mid.LinkRecovered(0)                                     // ignored
	// Neighbors observe the crash as link failures.
	nodes[0].LinkFailed(1)
	nodes[2].LinkFailed(1)
	eng.Run(eng.Now() + 2)
	if !math.IsInf(nodes[0].Protocol().Dist(2), 1) {
		t.Fatal("route survived the crash of its only relay")
	}

	mid.Restart()
	mid.Restart() // idempotent on an up node
	if mid.Down() {
		t.Fatal("Down() = true after Restart")
	}
	nodes[0].LinkRecovered(1)
	nodes[2].LinkRecovered(1)
	eng.Run(eng.Now() + 10)
	if math.IsInf(nodes[0].Protocol().Dist(2), 1) {
		t.Fatal("network did not reconverge after restart")
	}
	delivered := 0
	nodes[2].OnArrive = func(pkt *des.Packet) { delivered++ }
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
	eng.Run(eng.Now() + 1)
	if delivered != 1 {
		t.Fatalf("delivered %d through the restarted node, want 1", delivered)
	}
}

func TestLinkRecoveredUnknownPortIgnored(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	nodes[0].LinkRecovered(2) // node 0 has no port to 2; must be a no-op
	_ = eng
}

// TestStaticRouteToMissingPortDrops installs a static next hop the node has
// no port for: the packet is a no-route drop, not a panic.
func TestStaticRouteToMissingPortDrops(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeStatic
	cfg.Tl, cfg.Ts = 0, 0
	eng, nodes, g := line3(t, cfg)
	phi := make([]alloc.Params, g.NumNodes())
	phi[2] = alloc.Single(2) // node 0 is not adjacent to 2
	nodes[0].InstallStatic(phi)
	startAll(eng, nodes, 1)
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 800})
	if nodes[0].DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", nodes[0].DroppedNoRoute)
	}
	// Fractions in static mode surfaces the installed parameters.
	if f := nodes[0].Fractions(2); len(f) != 1 || f[2] != 1 {
		t.Fatalf("static Fractions = %v", f)
	}
}

func TestQueueOverflowCountsDroppedQueue(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	// Flood far more bits than the port's data band holds before the engine
	// gets a chance to drain anything.
	for i := 0; i < 700; i++ {
		nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
	}
	if nodes[0].DroppedQueue == 0 {
		t.Fatal("no queue drops despite overflowing the data band")
	}
	if nodes[0].ForwardedPackets == 0 {
		t.Fatal("nothing forwarded before the queue filled")
	}
}

func TestSPModeForwardsPackets(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeSP
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 5)
	delivered := 0
	nodes[2].OnArrive = func(pkt *des.Packet) { delivered++ }
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
	eng.Run(eng.Now() + 1)
	if delivered != 1 {
		t.Fatalf("SP delivered %d, want 1", delivered)
	}
	// With the only link out failed, SP has no successor and Fractions is nil.
	nodes[0].LinkFailed(1)
	if f := nodes[0].Fractions(2); f != nil {
		t.Fatalf("SP Fractions after failure = %v, want nil", f)
	}
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 800})
	if nodes[0].DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", nodes[0].DroppedNoRoute)
	}
}

func TestECMPFractionsTowardSelfEmpty(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeECMP
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 5)
	if f := nodes[0].Fractions(0); len(f) != 0 {
		t.Fatalf("ECMP Fractions toward self = %v", f)
	}
	_ = eng
}

// TestLazyAllocationOnFirstPacket clears a destination's parameters while
// routes exist: the first data packet must rebuild them in the forwarding
// path and announce them through OnAlloc.
func TestLazyAllocationOnFirstPacket(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	n0 := nodes[0]
	n0.phi[2] = nil
	n0.succSig[2] = ""
	allocs := 0
	n0.OnAlloc = func(j graph.NodeID, phi alloc.Params, succ []graph.NodeID) { allocs++ }
	n0.HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
	if allocs == 0 {
		t.Fatal("lazy rebuild did not report through OnAlloc")
	}
	if len(n0.phi[2]) == 0 {
		t.Fatal("parameters not rebuilt on first packet")
	}
	if n0.ForwardedPackets != 1 {
		t.Fatalf("ForwardedPackets = %d, want 1", n0.ForwardedPackets)
	}
}

func TestFlowletNoRouteReturnsNone(t *testing.T) {
	cfg := Defaults()
	cfg.FlowletTimeout = 1
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 5)
	nodes[0].LinkFailed(1)
	nodes[1].LinkFailed(0)
	eng.Run(eng.Now() + 2)
	nodes[0].HandleData(&des.Packet{FlowID: 7, Src: 0, Dst: 2, Bits: 800})
	if nodes[0].DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", nodes[0].DroppedNoRoute)
	}
}

func TestWeightedPickFPRemainderFallback(t *testing.T) {
	r := rng.New(3)
	// The accumulated weight is far below any plausible draw, so the main
	// loop falls through and the fallback returns the last positive key.
	if got := weightedPick(r, alloc.Params{1: 1e-18}); got != 1 {
		t.Fatalf("fallback pick = %v, want 1", got)
	}
	if got := weightedPick(r, alloc.Params{1: 0, 2: 0}); got != graph.None {
		t.Fatalf("all-zero pick = %v, want None", got)
	}
}

func TestShortDistUnknownNeighborInfinite(t *testing.T) {
	_, nodes, _ := line3(t, Defaults())
	d := nodes[0].shortDist(2)
	if !math.IsInf(d(99), 1) {
		t.Fatal("distance through an unmeasured neighbor not infinite")
	}
}

// TestShortCostSmoothingAndUtilizationCap exercises the smoothed short-term
// cost path and the utilization cap under sustained load.
func TestShortCostSmoothingAndUtilizationCap(t *testing.T) {
	cfg := Defaults()
	cfg.ShortCostSmoothing = 0.5
	cfg.CostUtilizationCap = 0.9
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 1)
	for i := 0; i < 500; i++ {
		at := eng.Now() + float64(i)*0.01
		eng.Schedule(at, func() {
			nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
		})
	}
	eng.Run(30)
	if nodes[0].Protocol().Dist(2) == math.Inf(1) {
		t.Fatal("routing lost under smoothing + utilization cap")
	}
	if nodes[0].ForwardedPackets == 0 {
		t.Fatal("no traffic forwarded")
	}
}
