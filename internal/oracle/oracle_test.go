package oracle

import (
	"strings"
	"testing"

	"minroute/internal/alloc"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/lsu"
	"minroute/internal/mpda"
	"minroute/internal/protonet"
	"minroute/internal/topo"
)

// fakeRouter is a hand-built RouterView/ProtocolView for mutation doubles:
// each test constructs the precise broken state its oracle must catch.
type fakeRouter struct {
	id     graph.NodeID
	fd     map[graph.NodeID]float64
	dist   map[graph.NodeID]float64
	succ   map[graph.NodeID][]graph.NodeID
	active bool
}

func (f *fakeRouter) ID() graph.NodeID            { return f.id }
func (f *fakeRouter) FD(j graph.NodeID) float64   { return f.fd[j] }
func (f *fakeRouter) Dist(j graph.NodeID) float64 { return f.dist[j] }
func (f *fakeRouter) Active() bool                { return f.active }
func (f *fakeRouter) Successors(j graph.NodeID) []graph.NodeID {
	return f.succ[j]
}

// TestLoopFreeCatchesCycle mutates two routers into a 2-cycle for
// destination 2 and demands the loop-free oracle fires.
func TestLoopFreeCatchesCycle(t *testing.T) {
	a := &fakeRouter{id: 0, fd: map[graph.NodeID]float64{2: 1},
		succ: map[graph.NodeID][]graph.NodeID{2: {1}}}
	b := &fakeRouter{id: 1, fd: map[graph.NodeID]float64{2: 1},
		succ: map[graph.NodeID][]graph.NodeID{2: {0}}}
	views := map[graph.NodeID]lfi.RouterView{0: a, 1: b}
	err := LoopFree(3, views)
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("loop-free oracle missed the 0<->1 cycle: %v", err)
	}
}

// TestLoopFreeCatchesFDOrdering admits a successor whose feasible distance
// equals (not strictly undercuts) the router's own — acyclic, but a breach
// of the Theorem 1 ordering the LFI conditions guarantee.
func TestLoopFreeCatchesFDOrdering(t *testing.T) {
	a := &fakeRouter{id: 0, fd: map[graph.NodeID]float64{2: 1},
		succ: map[graph.NodeID][]graph.NodeID{2: {1}}}
	b := &fakeRouter{id: 1, fd: map[graph.NodeID]float64{2: 1},
		succ: map[graph.NodeID][]graph.NodeID{2: {2}}}
	views := map[graph.NodeID]lfi.RouterView{0: a, 1: b}
	err := LoopFree(3, views)
	if err == nil || !strings.Contains(err.Error(), "FD") {
		t.Fatalf("FD-ordering oracle missed FD^1 == FD^0: %v", err)
	}
}

func TestLoopFreePassesCleanGraph(t *testing.T) {
	a := &fakeRouter{id: 0, fd: map[graph.NodeID]float64{2: 2},
		succ: map[graph.NodeID][]graph.NodeID{2: {1}}}
	b := &fakeRouter{id: 1, fd: map[graph.NodeID]float64{2: 1},
		succ: map[graph.NodeID][]graph.NodeID{2: {2}}}
	views := map[graph.NodeID]lfi.RouterView{0: a, 1: b}
	if err := LoopFree(3, views); err != nil {
		t.Fatalf("clean successor graph flagged: %v", err)
	}
}

// TestSimplexCatchesMutations drives every breach of Property 1 through
// the φ oracle.
func TestSimplexCatchesMutations(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	cases := []struct {
		name string
		phi  alloc.Params
		want string
	}{
		{"bad-sum", alloc.Params{1: 0.5, 2: 0.4}, "sum"},
		{"negative", alloc.Params{1: 1.5, 2: -0.5}, "negative"},
		{"off-support", alloc.Params{1: 0.5, 3: 0.5}, "non-successor"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Simplex(c.phi, succ)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("simplex oracle missed %s: %v", c.name, err)
			}
		})
	}
	if err := Simplex(alloc.Params{1: 0.5, 2: 0.5}, succ); err != nil {
		t.Fatalf("valid simplex flagged: %v", err)
	}
	// nil φ with successors present is the legitimate pre-IH state.
	if err := Simplex(nil, succ); err != nil {
		t.Fatalf("nil φ flagged: %v", err)
	}
}

// TestConservationCatchesLeak unbalances the ledger one packet in each
// direction (a leak and a double count) and demands the oracle fires.
func TestConservationCatchesLeak(t *testing.T) {
	ok := Ledger{Offered: 10, Delivered: 6, RouterDrops: 2, PortLost: 1, InFlight: 1}
	if err := Conservation(ok); err != nil {
		t.Fatalf("balanced ledger flagged: %v", err)
	}
	leak := ok
	leak.Delivered--
	if err := Conservation(leak); err == nil {
		t.Fatal("conservation oracle missed a leaked packet")
	}
	double := ok
	double.RouterDrops++
	if err := Conservation(double); err == nil {
		t.Fatal("conservation oracle missed a double-counted packet")
	}
}

// TestQuiescentCatchesStuckActive mutates a router into the ACTIVE phase
// with no messages pending — an ACK that will never arrive.
func TestQuiescentCatchesStuckActive(t *testing.T) {
	stuck := &fakeRouter{id: 1, active: true}
	views := map[graph.NodeID]ActiveView{0: &fakeRouter{id: 0}, 1: stuck}
	err := Quiescent(views, 0)
	if err == nil || !strings.Contains(err.Error(), "ACTIVE") {
		t.Fatalf("quiescence oracle missed stuck-ACTIVE router: %v", err)
	}
	// With messages still pending, ACTIVE is the normal protocol phase.
	if err := Quiescent(views, 3); err != nil {
		t.Fatalf("in-flight ACTIVE flagged: %v", err)
	}
	stuck.active = false
	if err := Quiescent(views, 0); err != nil {
		t.Fatalf("passive quiescent network flagged: %v", err)
	}
}

// convergedNet runs MPDA to quiescence on a ring and returns the pieces the
// convergence oracle needs.
func convergedNet(t *testing.T) (*graph.Graph, func(l *graph.Link) float64, map[graph.NodeID]*mpda.Router) {
	t.Helper()
	g := topo.Ring(5, 1e6, 1e-3)
	cost := func(l *graph.Link) float64 { return l.PropDelay + 1e-4 }
	net := protonet.New(g, 7)
	routers := make(map[graph.NodeID]*mpda.Router)
	for _, id := range g.Nodes() {
		r := mpda.NewRouter(id, g.NumNodes(), net.Sender(id))
		routers[id] = r
		net.Attach(id, r)
	}
	net.BringUpAll(cost)
	net.Run(100000)
	return g, cost, routers
}

// TestConvergenceCatchesMutations converges a real MPDA network, verifies
// the oracle passes, then mutates the ground truth out from under it (a
// cost the protocol never saw) so distances and successor sets are both
// wrong — the oracle must fire on each.
func TestConvergenceCatchesMutations(t *testing.T) {
	g, cost, routers := convergedNet(t)
	views := make(map[graph.NodeID]ProtocolView, len(routers))
	for id, r := range routers {
		views[id] = r
	}
	if err := Convergence(g, cost, views); err != nil {
		t.Fatalf("converged network flagged: %v", err)
	}
	// Mutation: ground-truth costs shift but the protocol's tables do not.
	skewed := func(l *graph.Link) float64 {
		if l.From == 0 || l.To == 0 {
			return cost(l) * 10
		}
		return cost(l)
	}
	if err := Convergence(g, skewed, views); err == nil {
		t.Fatal("convergence oracle missed stale distance tables")
	}
}

// TestConvergenceCatchesWrongSuccessors keeps distances exact but widens
// one successor set with an equal-distance neighbor, violating the strict
// S_ij = {k : D_kj < D_ij} characterization of Theorem 4.
func TestConvergenceCatchesWrongSuccessors(t *testing.T) {
	g, cost, routers := convergedNet(t)
	views := make(map[graph.NodeID]ProtocolView, len(routers))
	for id, r := range routers {
		views[id] = r
	}
	// On an odd ring every router has a unique closer neighbor per
	// destination; admitting the other neighbor keeps distances intact but
	// breaks the successor characterization.
	real := routers[0]
	mutant := &fakeRouter{id: 0,
		dist: map[graph.NodeID]float64{},
		succ: map[graph.NodeID][]graph.NodeID{},
	}
	for j := 0; j < g.NumNodes(); j++ {
		jid := graph.NodeID(j)
		mutant.dist[jid] = real.Dist(jid)
		mutant.succ[jid] = real.Successors(jid)
	}
	mutant.succ[2] = g.Neighbors(0) // both ring neighbors: one is not closer
	views[0] = mutant
	err := Convergence(g, cost, views)
	if err == nil || !strings.Contains(err.Error(), "S =") {
		t.Fatalf("convergence oracle missed inflated successor set: %v", err)
	}
}

// ackStripper is a protocol-level mutation double: it forwards every LSU to
// the wrapped router with the ACK flag cleared, so upstream neighbors wait
// forever for acknowledgments. The quiescence oracle must catch the
// resulting stuck-ACTIVE routers.
type ackStripper struct{ inner *mpda.Router }

func (a *ackStripper) HandleLSU(m *lsu.Msg) {
	m.Ack = false
	if len(m.Entries) > 0 {
		a.inner.HandleLSU(m)
	}
}
func (a *ackStripper) LinkUp(k graph.NodeID, cost float64)         { a.inner.LinkUp(k, cost) }
func (a *ackStripper) LinkCostChange(k graph.NodeID, cost float64) { a.inner.LinkCostChange(k, cost) }
func (a *ackStripper) LinkDown(k graph.NodeID)                     { a.inner.LinkDown(k) }

// TestQuiescentCatchesAckStripping runs real MPDA routers with one node's
// inbound ACKs stripped — a seeded fault in the reliable-delivery machinery
// — and demands the quiescence oracle reports a stuck-ACTIVE router once
// the message exchange dries up.
func TestQuiescentCatchesAckStripping(t *testing.T) {
	g := topo.Ring(4, 1e6, 1e-3)
	cost := func(l *graph.Link) float64 { return l.PropDelay + 1e-4 }
	net := protonet.New(g, 11)
	routers := make(map[graph.NodeID]*mpda.Router)
	views := make(map[graph.NodeID]ActiveView)
	for _, id := range g.Nodes() {
		r := mpda.NewRouter(id, g.NumNodes(), net.Sender(id))
		routers[id] = r
		views[id] = r
		if id == 2 {
			net.Attach(id, &ackStripper{inner: r})
		} else {
			net.Attach(id, r)
		}
	}
	net.BringUpAll(cost)
	net.Run(100000)
	err := Quiescent(views, net.Pending())
	if err == nil || !strings.Contains(err.Error(), "ACTIVE") {
		t.Fatalf("quiescence oracle missed ACK-stripping mutant: %v", err)
	}
}

// TestSuiteRecordsViolations exercises the Log/Suite plumbing: counts per
// check, ordered counts output, and violation coordinates.
func TestSuiteRecordsViolations(t *testing.T) {
	s := NewSuite(nil)
	calls := 0
	s.Add("always-ok", func() error { return nil })
	s.Add("fails-once", func() error {
		calls++
		if calls == 2 {
			return Conservation(Ledger{Offered: 1})
		}
		return nil
	})
	if !s.RunAll(1, 0.5) {
		t.Fatal("first sweep should pass")
	}
	if s.RunAll(2, 1.5) {
		t.Fatal("second sweep should fail")
	}
	if !s.Log.Failed() || len(s.Log.Violations) != 1 {
		t.Fatalf("violations = %v", s.Log.Violations)
	}
	v := s.Log.Violations[0]
	if v.Check != "fails-once" || v.Event != 2 || v.Time != 1.5 {
		t.Fatalf("violation coordinates wrong: %+v", v)
	}
	if !strings.Contains(v.String(), "fails-once") {
		t.Fatalf("String() = %q", v.String())
	}
	counts := s.Log.Counts()
	if len(counts) != 2 || counts[0].Check != "always-ok" || counts[0].Count != 2 ||
		counts[1].Check != "fails-once" || counts[1].Count != 2 {
		t.Fatalf("counts = %v", counts)
	}
}
