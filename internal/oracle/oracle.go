// Package oracle holds the always-on invariant checkers the chaos harness
// hooks into the simulation event loops. Each checker is a pure function
// over read-only views of router/network state, returning a descriptive
// error on violation; the Suite/Log machinery turns those errors into
// recorded Violations with event coordinates so a failing run can be
// located and replayed.
//
// The invariants come straight from the paper:
//
//   - Loop-freedom (Theorems 1 and 3): the union successor graph for every
//     destination is acyclic at every instant, and successor sets respect
//     the feasible-distance ordering FD_j^k < FD_j^i.
//   - Property 1 of the allocation heuristics: routing parameters φ_jk form
//     a simplex over the successor set after every IH/AH step.
//   - Traffic conservation: every offered packet is, at any event boundary,
//     exactly one of delivered, dropped (with a counted reason), lost to a
//     link/node failure, or still in flight.
//   - Convergence (Theorem 4): once the control plane quiesces, distances
//     equal the true shortest paths and S_ij = {k : D_kj < D_ij}.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"minroute/internal/alloc"
	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/numeric"
)

// Check names, used as Violation.Check and as Suite registration keys.
const (
	CheckLoopFreeName     = "loop-free"
	CheckSimplexName      = "phi-simplex"
	CheckConservationName = "conservation"
	CheckQuiescenceName   = "quiescence"
	CheckConvergenceName  = "convergence"
)

// Violation is one recorded invariant breach.
type Violation struct {
	// Check is the name of the oracle that fired.
	Check string
	// Detail is the checker's error text.
	Detail string
	// Event locates the breach: DES events fired, or protonet delivery
	// attempts, at the moment the oracle ran.
	Event int64
	// Time is the simulation clock (always 0 for protocol-level runs, which
	// have no clock).
	Time float64
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] event %d t=%.6f: %s", v.Check, v.Event, v.Time, v.Detail)
}

// Log accumulates per-check run counts and violations across a run.
type Log struct {
	Violations []Violation
	counts     map[string]int64
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{counts: make(map[string]int64)} }

// Record counts one execution of the named check.
func (l *Log) Record(check string) { l.counts[check]++ }

// Violate records a breach of the named check.
func (l *Log) Violate(check, detail string, event int64, t float64) {
	l.Violations = append(l.Violations, Violation{Check: check, Detail: detail, Event: event, Time: t})
}

// Failed reports whether any violation has been recorded.
func (l *Log) Failed() bool { return len(l.Violations) > 0 }

// CheckCount pairs a check name with how many times it ran.
type CheckCount struct {
	Check string
	Count int64
}

// Counts returns the per-check execution counts in name order.
func (l *Log) Counts() []CheckCount {
	out := make([]CheckCount, 0, len(l.counts))
	//lint:maporder-ok entries are collected and sorted by name before use
	for name, c := range l.counts {
		out = append(out, CheckCount{Check: name, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Check < out[j].Check })
	return out
}

// Suite is an ordered set of named checkers sharing one Log — the pluggable
// hook installed at a tap point (des.Engine.OnEvent, protonet.OnDeliver).
type Suite struct {
	Log      *Log
	checkers []checker
}

type checker struct {
	name string
	fn   func() error
}

// NewSuite returns a suite recording into log (a fresh Log when nil).
func NewSuite(log *Log) *Suite {
	if log == nil {
		log = NewLog()
	}
	return &Suite{Log: log}
}

// Add registers a checker under name. Checkers run in registration order.
func (s *Suite) Add(name string, fn func() error) {
	s.checkers = append(s.checkers, checker{name: name, fn: fn})
}

// RunAll executes every registered checker once, recording executions and
// violations at coordinates (event, t). It reports whether all passed.
func (s *Suite) RunAll(event int64, t float64) bool {
	ok := true
	for _, c := range s.checkers {
		s.Log.Record(c.name)
		if err := c.fn(); err != nil {
			s.Log.Violate(c.name, err.Error(), event, t)
			ok = false
		}
	}
	return ok
}

// LoopFree verifies Theorem 1/3: the successor graph of every destination
// is acyclic and every successor strictly decreases feasible distance.
// views must contain live routers only (a crashed router forwards nothing).
func LoopFree(n int, views map[graph.NodeID]lfi.RouterView) error {
	if err := lfi.CheckAllDestinations(n, views); err != nil {
		return err
	}
	return lfi.CheckFDOrdering(n, views)
}

// Simplex verifies Property 1 for one (router, destination) pair after an
// IH/AH step: φ non-negative, supported on the successor set, summing to
// one. An empty φ is legal even with successors present — IH yields nil
// while every marginal distance is still infinite — so only non-empty
// parameter vectors are validated.
func Simplex(phi alloc.Params, succ []graph.NodeID) error {
	if len(phi) == 0 {
		return nil
	}
	return alloc.Validate(phi, succ)
}

// Ledger is an instantaneous packet census of the network.
type Ledger struct {
	// Offered counts packets generated by traffic sources.
	Offered int64
	// Delivered counts packets that reached their destination.
	Delivered int64
	// RouterDrops counts packets dropped by routers with a recorded reason
	// (no route, hop limit, queue overflow, node down).
	RouterDrops int64
	// PortLost counts packets that ports owned but lost to link failures.
	PortLost int64
	// InFlight counts packets currently owned by ports (queued,
	// transmitting, or propagating).
	InFlight int64
}

// Conservation verifies that the ledger balances: offered equals delivered
// plus every accounted loss plus everything still travelling. A leak (a
// packet freed without being counted) or double-count breaks the balance.
func Conservation(led Ledger) error {
	accounted := led.Delivered + led.RouterDrops + led.PortLost + led.InFlight
	if accounted != led.Offered {
		return fmt.Errorf(
			"oracle: packet ledger unbalanced: offered %d != delivered %d + dropped %d + lost %d + in-flight %d (= %d)",
			led.Offered, led.Delivered, led.RouterDrops, led.PortLost, led.InFlight, accounted)
	}
	return nil
}

// ActiveView is the slice of protocol state the quiescence oracle reads.
// mpda.Router satisfies it.
type ActiveView interface {
	ID() graph.NodeID
	Active() bool
}

// ProtocolView adds the distance and successor tables the convergence
// oracle compares against ground truth. mpda.Router satisfies it.
type ProtocolView interface {
	ActiveView
	Dist(j graph.NodeID) float64
	Successors(j graph.NodeID) []graph.NodeID
}

// Quiescent verifies that no router is stuck in the ACTIVE phase once the
// network has no messages pending: an ACTIVE router with nothing in flight
// is waiting for an ACK that can never arrive, a liveness bug in the
// reliable-delivery machinery.
func Quiescent(routers map[graph.NodeID]ActiveView, pending int) error {
	if pending > 0 {
		return nil
	}
	ids := make([]graph.NodeID, 0, len(routers))
	//lint:maporder-ok keys are collected and sorted before the scan
	for id := range routers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if routers[id].Active() {
			return fmt.Errorf("oracle: router %d stuck ACTIVE with no messages pending", id)
		}
	}
	return nil
}

// Convergence verifies Theorem 4 against Dijkstra ground truth on the
// current topology: every router's distances match the true shortest paths
// and S_ij = {k : D_kj < D_ij} (strictly closer neighbors, per
// numeric.Closer). Call it only at true quiescence — during convergence the
// tables legitimately disagree with the ground truth.
func Convergence(g *graph.Graph, cost func(l *graph.Link) float64, routers map[graph.NodeID]ProtocolView) error {
	view := dijkstra.GraphView{G: g, Cost: cost}
	truth := make(map[graph.NodeID]*dijkstra.Result, g.NumNodes())
	for _, id := range g.Nodes() {
		truth[id] = dijkstra.Run(view, id)
	}
	for _, i := range g.Nodes() {
		r, ok := routers[i]
		if !ok {
			continue // crashed router: no live tables to audit
		}
		for j := 0; j < g.NumNodes(); j++ {
			jid := graph.NodeID(j)
			got, want := r.Dist(jid), truth[i].Dist[j]
			if math.IsInf(got, 1) != math.IsInf(want, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > 1e-9) {
				return fmt.Errorf("oracle: router %d: D_%d = %v, want %v", i, j, got, want)
			}
			if jid == i {
				continue
			}
			want2 := make([]graph.NodeID, 0, 4)
			for _, k := range g.Neighbors(i) {
				if _, live := routers[k]; !live {
					continue
				}
				if numeric.Closer(truth[k].Dist[j], truth[i].Dist[j]) {
					want2 = append(want2, k)
				}
			}
			got2 := r.Successors(jid)
			if !sameIDs(got2, want2) {
				return fmt.Errorf("oracle: router %d dest %d: S = %v, want %v", i, j, got2, want2)
			}
		}
	}
	return nil
}

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
