package mpda

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/lsu"
	"minroute/internal/numeric"
	"minroute/internal/protonet"
	"minroute/internal/topo"
)

func propCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

// buildNet wires one MPDA router per node into a protonet harness with the
// loop-freedom and FD-ordering invariants checked after every delivery.
func buildNet(t *testing.T, g *graph.Graph, seed uint64, costOf func(l *graph.Link) float64) (*protonet.Net, map[graph.NodeID]*Router) {
	t.Helper()
	net := protonet.New(g, seed)
	routers := make(map[graph.NodeID]*Router)
	views := make(map[graph.NodeID]lfi.RouterView)
	for _, id := range g.Nodes() {
		r := NewRouter(id, g.NumNodes(), net.Sender(id))
		routers[id] = r
		views[id] = r
		net.Attach(id, r)
	}
	n := g.NumNodes()
	net.OnDeliver = func() {
		if err := lfi.CheckAllDestinations(n, views); err != nil {
			t.Fatal(err)
		}
		if err := lfi.CheckFDOrdering(n, views); err != nil {
			t.Fatal(err)
		}
	}
	net.BringUpAll(costOf)
	return net, routers
}

// checkTheorem4 verifies liveness: distances correct and
// S_j = {k : D_j^k < D_j} at every router.
func checkTheorem4(t *testing.T, g *graph.Graph, routers map[graph.NodeID]*Router, costOf func(l *graph.Link) float64) {
	t.Helper()
	view := dijkstra.GraphView{G: g, Cost: costOf}
	truth := make(map[graph.NodeID]*dijkstra.Result)
	for _, id := range g.Nodes() {
		truth[id] = dijkstra.Run(view, id)
	}
	for _, i := range g.Nodes() {
		r := routers[i]
		if r.Active() {
			t.Fatalf("router %d still ACTIVE after quiescence", i)
		}
		for j := 0; j < g.NumNodes(); j++ {
			jid := graph.NodeID(j)
			got, want := r.Dist(jid), truth[i].Dist[j]
			if math.IsInf(got, 1) != math.IsInf(want, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > 1e-9) {
				t.Fatalf("router %d: D_%d = %v, want %v", i, j, got, want)
			}
			if jid == i {
				continue
			}
			// Expected successor set from ground truth.
			var want2 []graph.NodeID
			for _, k := range g.Neighbors(i) {
				if numeric.Closer(truth[k].Dist[j], truth[i].Dist[j]) {
					want2 = append(want2, k)
				}
			}
			got2 := r.Successors(jid)
			if len(got2) != len(want2) {
				t.Fatalf("router %d dest %d: S = %v, want %v", i, j, got2, want2)
			}
			for x := range want2 {
				if got2[x] != want2[x] {
					t.Fatalf("router %d dest %d: S = %v, want %v", i, j, got2, want2)
				}
			}
		}
	}
}

func TestMPDAConvergesRing(t *testing.T) {
	g := topo.Ring(6, 1e6, 1e-3)
	net, routers := buildNet(t, g, 1, propCost)
	net.Run(100000)
	checkTheorem4(t, g, routers, propCost)
}

func TestMPDAConvergesGrid(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(t, g, 2, propCost)
	net.Run(100000)
	checkTheorem4(t, g, routers, propCost)
}

func TestMPDAConvergesCAIRN(t *testing.T) {
	n := topo.CAIRN()
	net, routers := buildNet(t, n.Graph, 3, propCost)
	net.Run(2000000)
	checkTheorem4(t, n.Graph, routers, propCost)
}

func TestMPDAConvergesNET1(t *testing.T) {
	n := topo.NET1()
	net, routers := buildNet(t, n.Graph, 4, propCost)
	net.Run(1000000)
	checkTheorem4(t, n.Graph, routers, propCost)
}

// TestMPDAUnequalCostMultipath demonstrates the headline capability: NET1
// node 0 reaches node 8 through successors 1 and 3 even though no two paths
// share a length with the shortest one necessarily.
func TestMPDAUnequalCostMultipath(t *testing.T) {
	n := topo.NET1()
	uniform := func(l *graph.Link) float64 { return 1 }
	net, routers := buildNet(t, n.Graph, 5, uniform)
	net.Run(1000000)
	succ := routers[0].Successors(8)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 3 {
		t.Fatalf("S_8 at node 0 = %v, want [1 3]", succ)
	}
	// And with asymmetric costs the successor paths have unequal cost.
	weighted := func(l *graph.Link) float64 {
		if l.From == 0 && l.To == 1 || l.From == 1 && l.To == 0 {
			return 1.5
		}
		return 1
	}
	net2, routers2 := buildNet(t, topo.NET1().Graph, 6, weighted)
	net2.Run(1000000)
	succ2 := routers2[0].Successors(8)
	if len(succ2) < 2 {
		t.Fatalf("expected multipath under unequal costs, got %v", succ2)
	}
	d1 := routers2[0].SuccessorDistance(8, succ2[0])
	d2 := routers2[0].SuccessorDistance(8, succ2[1])
	if d1 == d2 {
		t.Fatalf("successor path costs unexpectedly equal: %v", d1)
	}
}

func TestMPDABestSuccessorMatchesPreferred(t *testing.T) {
	n := topo.NET1()
	net, routers := buildNet(t, n.Graph, 7, propCost)
	net.Run(1000000)
	for _, i := range n.Graph.Nodes() {
		r := routers[i]
		for j := 0; j < n.Graph.NumNodes(); j++ {
			jid := graph.NodeID(j)
			if jid == i {
				continue
			}
			best := r.BestSuccessor(jid)
			if best == graph.None {
				t.Fatalf("router %d has no successor for %d", i, j)
			}
			// The best successor must achieve D_j = D_jk + l_ik.
			if got, want := r.SuccessorDistance(jid, best), r.Dist(jid); math.Abs(got-want) > 1e-9 {
				t.Fatalf("router %d dest %d: best successor distance %v != D %v", i, j, got, want)
			}
		}
	}
}

func TestMPDALoopFreeUnderCostChurn(t *testing.T) {
	// Repeatedly perturb link costs and deliver messages in random order;
	// the OnDeliver hook asserts loop-freedom after every single delivery.
	g := topo.Grid(3, 3, 1e6, 1e-3)
	costs := map[[2]graph.NodeID]float64{}
	costOf := func(l *graph.Link) float64 {
		if c, ok := costs[[2]graph.NodeID{l.From, l.To}]; ok {
			return c
		}
		return propCost(l)
	}
	net, routers := buildNet(t, g, 8, costOf)
	net.Run(500000)

	links := g.Links()
	for round := 0; round < 12; round++ {
		l := links[(round*7)%len(links)]
		c := 0.0001 + float64(round%5)*0.002
		costs[[2]graph.NodeID{l.From, l.To}] = c
		net.ChangeCost(l.From, l.To, c)
		// Interleave: deliver only part of the queue before the next change
		// so that multiple transients overlap.
		for i := 0; i < 50 && net.Step(); i++ {
		}
	}
	net.Run(500000)
	checkTheorem4(t, g, routers, costOf)
}

func TestMPDALoopFreeUnderLinkFailures(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(t, g, 9, propCost)
	net.Run(500000)
	net.FailLink(0, 1)
	for i := 0; i < 30 && net.Step(); i++ {
	}
	net.FailLink(4, 5)
	net.Run(500000)
	checkTheorem4(t, g, routers, propCost)
}

func TestMPDARecoversAfterPartitionHeals(t *testing.T) {
	g := topo.Ring(4, 1e6, 1e-3)
	net, routers := buildNet(t, g, 10, propCost)
	net.Run(100000)
	// Partition the ring: nodes {0,1} vs {2,3} by cutting 1-2 and 3-0.
	net.FailLink(1, 2)
	net.FailLink(3, 0)
	net.Run(100000)
	if !math.IsInf(routers[0].Dist(2), 1) {
		t.Fatalf("node 0 still has finite distance to 2 after partition: %v", routers[0].Dist(2))
	}
	net.RestoreLink(1, 2, 1e6, 1e-3, propCost(&graph.Link{PropDelay: 1e-3}))
	net.Run(100000)
	checkTheorem4(t, g, routers, propCost)
}

func TestMPDAPropertyRandomGraphsRandomSchedules(t *testing.T) {
	check := func(seed uint64, n8, extra8 uint8) bool {
		n := int(n8%8) + 3
		extra := int(extra8 % 10)
		g := topo.Random(seed, n, extra, 1e6, 1e7, 1e-3)
		net := protonet.New(g, seed^0x5eed)
		routers := make(map[graph.NodeID]*Router)
		views := make(map[graph.NodeID]lfi.RouterView)
		for _, id := range g.Nodes() {
			r := NewRouter(id, g.NumNodes(), net.Sender(id))
			routers[id] = r
			views[id] = r
			net.Attach(id, r)
		}
		ok := true
		net.OnDeliver = func() {
			if lfi.CheckAllDestinations(n, views) != nil || lfi.CheckFDOrdering(n, views) != nil {
				ok = false
			}
		}
		net.BringUpAll(propCost)
		net.Run(2000000)
		if !ok {
			return false
		}
		// Liveness spot check: distances correct at every router.
		view := dijkstra.GraphView{G: g, Cost: propCost}
		for _, id := range g.Nodes() {
			truth := dijkstra.Run(view, id)
			for j := 0; j < n; j++ {
				got, want := routers[id].Dist(graph.NodeID(j)), truth.Dist[j]
				if math.IsInf(got, 1) != math.IsInf(want, 1) {
					return false
				}
				if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMPDANilSenderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil sender accepted")
		}
	}()
	NewRouter(0, 3, nil)
}

func TestMPDAIsolatedRouter(t *testing.T) {
	// A router whose only link fails must stay passive and harmless.
	g := topo.Ring(3, 1e6, 1e-3)
	net, routers := buildNet(t, g, 11, propCost)
	net.Run(100000)
	r := routers[0]
	r.LinkDown(1)
	r.LinkDown(2)
	if r.Active() {
		t.Fatal("isolated router went ACTIVE with no one to wait for")
	}
	for j := 1; j < 3; j++ {
		if !math.IsInf(r.Dist(graph.NodeID(j)), 1) {
			t.Fatalf("isolated router still reaches %d", j)
		}
		if len(r.Successors(graph.NodeID(j))) != 0 {
			t.Fatalf("isolated router has successors for %d", j)
		}
	}
}

// TestMPDAAckPerEntryBearingLSU is the regression test for a stale-ACK bug:
// the full-table sync LinkUp sends to a new neighbor is acknowledged like any
// entry-bearing LSU, so it must be counted in the awaiting bookkeeping. When
// it was not, the sync's ACK acted as a spurious credit that released a later
// ACTIVE phase before the neighbor had applied the flooded change, letting FD
// rise early and breaking the loop-free invariant (a chaos run on CAIRN with
// a link failure mid-convergence produced a persistent two-node loop).
func TestMPDAAckPerEntryBearingLSU(t *testing.T) {
	sent := make(map[graph.NodeID]int) // entry-bearing LSUs sent per neighbor
	r := NewRouter(1, 3, func(to graph.NodeID, m *lsu.Msg) {
		if len(m.Entries) > 0 {
			sent[to]++
		}
	})

	// First link: empty main table, so no sync; the flood announcing the new
	// adjacent link starts an ACTIVE phase awaiting 0's ACK.
	r.LinkUp(0, 1)
	if !r.Active() {
		t.Fatal("router should be ACTIVE after flooding the first link")
	}
	r.HandleLSU(&lsu.Msg{From: 0, Ack: true})
	if r.Active() {
		t.Fatal("router should be PASSIVE after the only outstanding ACK")
	}

	// Second link: the main table is non-empty now, so LinkUp sends a full
	// sync to 2 and then floods the new link to both neighbors. Router 2 owes
	// two ACKs (sync + flood), router 0 owes one.
	r.LinkUp(2, 1)
	if !r.Active() {
		t.Fatal("router should be ACTIVE after flooding the second link")
	}
	if sent[2] != 2 {
		t.Fatalf("neighbor 2 got %d entry-bearing LSUs, want 2 (sync + flood)", sent[2])
	}

	// One ACK from each neighbor must NOT end the phase: 2's first ACK covers
	// the sync, not the flood. The buggy version went PASSIVE here.
	r.HandleLSU(&lsu.Msg{From: 2, Ack: true})
	r.HandleLSU(&lsu.Msg{From: 0, Ack: true})
	if !r.Active() {
		t.Fatal("router left ACTIVE while neighbor 2's flood ACK is outstanding")
	}
	r.HandleLSU(&lsu.Msg{From: 2, Ack: true})
	if r.Active() {
		t.Fatal("router should be PASSIVE once every entry-bearing LSU is acknowledged")
	}
}
