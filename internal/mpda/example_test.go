package mpda_test

import (
	"fmt"

	"minroute/internal/graph"
	"minroute/internal/mpda"
	"minroute/internal/protonet"
	"minroute/internal/topo"
)

// Example builds a four-node ring of MPDA routers, converges them, and
// prints node 0's loop-free successor set toward node 2 — both neighbors,
// because the two ring paths have equal length.
func Example() {
	g := topo.Ring(4, 10e6, 1e-3)
	net := protonet.New(g, 1)
	routers := make(map[graph.NodeID]*mpda.Router)
	for _, id := range g.Nodes() {
		r := mpda.NewRouter(id, g.NumNodes(), net.Sender(id))
		routers[id] = r
		net.Attach(id, r)
	}
	net.BringUpAll(func(l *graph.Link) float64 { return 1 })
	net.Run(100000)

	fmt.Println("S_2 at node 0:", routers[0].Successors(2))
	fmt.Println("D_2 at node 0:", routers[0].Dist(2))
	// Output:
	// S_2 at node 0: [1 3]
	// D_2 at node 0: 2
}
