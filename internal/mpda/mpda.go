// Package mpda implements MPDA, the Multiple-path Partial-topology
// Dissemination Algorithm (paper Fig. 4 and Section 4.1.2) — the first
// link-state routing algorithm that provides multiple loop-free paths of
// arbitrary positive cost to each destination at every instant.
//
// MPDA is PDA plus the Loop-Free Invariant (LFI) machinery:
//
//   - Each router keeps a feasible distance FD_j per destination — an
//     estimate of D_j that may lag it during transients but never exceeds
//     any D_j value a neighbor might still hold.
//   - The successor set is S_j = {k ∈ N : D_jk < FD_j}, where D_jk is the
//     distance from neighbor k to j computed from the topology k reported.
//   - LSUs are synchronized over a single hop: a router that floods a
//     topology change goes ACTIVE and defers further main-table updates
//     until every neighbor has acknowledged the LSU; only then may FD rise.
//
// Theorem 3 (safety): the successor graph implied by all S_j is loop-free
// at every instant. Theorem 4 (liveness): after the last change, D_j are
// the correct shortest distances and S_j = {k : D_j^k < D_j}.
package mpda

import (
	"math"

	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/numeric"
	"minroute/internal/pda"
)

// Sender transmits an LSU message toward a neighbor; the transport must be
// reliable and FIFO per link.
type Sender func(to graph.NodeID, m *lsu.Msg)

// Router is the MPDA state machine. Not safe for concurrent use.
type Router struct {
	t    *pda.Tables
	send Sender

	// OnPhase, when non-nil, observes every ACTIVE/PASSIVE transition
	// (called after the state flips). Telemetry hangs span edges off it.
	OnPhase func(active bool)
	// OnCommit, when non-nil, observes every main-table (MTU) commit that
	// changed entries; n is the number of changed entries about to flood.
	OnCommit func(n int)

	// active is true while the router waits for ACKs to its last LSU.
	active bool
	// awaiting counts outstanding ACKs per neighbor. Every entry-bearing
	// LSU sent — floods and the LinkUp full-table sync alike — increments
	// the neighbor's counter, and every ACK received decrements it; a
	// neighbor is removed when its counter reaches zero. Counting every
	// entry-bearing LSU is what makes the bookkeeping exact: the receiver
	// acknowledges each such LSU, and over a reliable FIFO link ACKs arrive
	// in the order the LSUs were sent, so a zero counter proves the most
	// recent flood (and everything before it) has been applied remotely.
	// Tracking only the flood would let the sync's ACK act as a stale
	// credit that releases a later ACTIVE phase before the neighbor has
	// seen the flooded change, breaking the LFI.
	awaiting map[graph.NodeID]int
	// fd[j] is the feasible distance FD_j.
	fd []float64
	// succ[j] is the successor set S_j, ascending by neighbor ID.
	succ [][]graph.NodeID
}

// NewRouter returns an MPDA router for node id over an ID space of n nodes.
// Routers start PASSIVE with FD_j = ∞ (FD_id = 0).
func NewRouter(id graph.NodeID, n int, send Sender) *Router {
	if send == nil {
		panic("mpda: nil sender")
	}
	r := &Router{
		t:        pda.NewTables(id, n),
		send:     send,
		awaiting: make(map[graph.NodeID]int),
		fd:       make([]float64, n),
		succ:     make([][]graph.NodeID, n),
	}
	for j := range r.fd {
		r.fd[j] = math.Inf(1)
	}
	r.fd[id] = 0
	return r
}

// ID returns the router's node ID.
func (r *Router) ID() graph.NodeID { return r.t.ID() }

// Tables exposes the underlying PDA tables for inspection.
func (r *Router) Tables() *pda.Tables { return r.t }

// Active reports whether the router is in the ACTIVE phase.
func (r *Router) Active() bool { return r.active }

// FD returns the feasible distance FD_j.
func (r *Router) FD(j graph.NodeID) float64 { return r.fd[j] }

// Dist returns D_j from the main topology table.
func (r *Router) Dist(j graph.NodeID) float64 { return r.t.Dist(j) }

// Successors returns S_j. The returned slice is owned by the router; do not
// mutate it.
func (r *Router) Successors(j graph.NodeID) []graph.NodeID { return r.succ[j] }

// SuccessorDistance returns D_jk + l_ik, the marginal distance to j through
// neighbor k, as used by the allocation heuristics. It is +Inf when k's
// distance or the adjacent link is unknown.
func (r *Router) SuccessorDistance(j, k graph.NodeID) float64 {
	l, ok := r.t.AdjCost(k)
	if !ok {
		return math.Inf(1)
	}
	return r.t.NbrDist(j, k) + l
}

// BestSuccessor returns the successor in S_j minimizing D_jk + l_ik, or
// graph.None when S_j is empty. Single-path (SP) forwarding uses this.
func (r *Router) BestSuccessor(j graph.NodeID) graph.NodeID {
	best := math.Inf(1)
	chosen := graph.None
	for _, k := range r.succ[j] {
		if d := r.SuccessorDistance(j, k); d < best {
			best = d
			chosen = k
		}
	}
	return chosen
}

// LinkUp handles a new (or recovered) adjacent link to k with cost l_ik.
// The router sends its full main table to the new neighbor so that the
// neighbor's T_k copy starts consistent.
func (r *Router) LinkUp(k graph.NodeID, cost float64) {
	r.t.SetAdjacent(k, cost)
	if full := r.t.Main().Entries(); len(full) > 0 {
		r.awaiting[k]++
		r.send(k, &lsu.Msg{From: r.ID(), Entries: full})
	}
	r.process(graph.None)
}

// LinkCostChange handles a cost change of the adjacent link to k.
func (r *Router) LinkCostChange(k graph.NodeID, cost float64) {
	if _, up := r.t.AdjCost(k); !up {
		return
	}
	r.t.SetAdjacent(k, cost)
	r.process(graph.None)
}

// LinkDown handles failure of the adjacent link to k. Per the paper, "any
// pending ACKs from the neighbor at the other end of the link are treated
// as received".
func (r *Router) LinkDown(k graph.NodeID) {
	r.t.RemoveAdjacent(k)
	delete(r.awaiting, k)
	r.process(graph.None)
}

// HandleLSU processes an LSU message from a neighbor.
func (r *Router) HandleLSU(m *lsu.Msg) {
	if _, up := r.t.AdjCost(m.From); !up {
		return // stale message across a down link
	}
	r.t.ApplyLSU(m.From, m.Entries)
	if m.Ack && r.awaiting[m.From] > 0 {
		if r.awaiting[m.From]--; r.awaiting[m.From] == 0 {
			delete(r.awaiting, m.From)
		}
	}
	ackTo := graph.None
	if len(m.Entries) > 0 {
		// Every LSU that carries topology changes must be acknowledged.
		ackTo = m.From
	}
	r.process(ackTo)
}

// process is the body of procedure MPDA (paper Fig. 4), run after the
// NTU step of any event. ackTo identifies a neighbor whose entry-bearing
// LSU must be acknowledged by this event's outgoing message (graph.None
// when the event was not such an LSU).
func (r *Router) process(ackTo graph.NodeID) {
	var diff []lsu.Entry
	switch {
	case !r.active:
		// Step 2: PASSIVE — update T and lower FD toward the new D.
		diff = r.t.RunMTU()
		for j := range r.fd {
			r.fd[j] = math.Min(r.fd[j], r.t.Dist(graph.NodeID(j)))
		}
	case len(r.awaiting) == 0:
		// Step 3: ACTIVE and the last ACK has arrived. temp captures the
		// distances that were reported in the just-acknowledged LSU (MTU was
		// deferred during the ACTIVE phase, so D is unchanged since then).
		temp := append([]float64(nil), r.t.Dists()...)
		r.setActive(false)
		diff = r.t.RunMTU()
		for j := range r.fd {
			r.fd[j] = math.Min(temp[j], r.t.Dist(graph.NodeID(j)))
		}
	default:
		// ACTIVE with ACKs outstanding: NTU only; the MTU is deferred.
	}

	// Step 4: recompute the successor sets S_j = {k | D_jk < FD_j}.
	r.recomputeSuccessors()

	// Steps 5-8: flood changes (becoming ACTIVE) and acknowledge.
	if len(diff) > 0 {
		if r.OnCommit != nil {
			r.OnCommit(len(diff))
		}
		nbrs := r.t.Neighbors()
		if len(nbrs) == 0 {
			return // isolated router: nothing to flood, stay passive
		}
		r.setActive(true)
		for _, k := range nbrs {
			r.awaiting[k]++
			r.send(k, &lsu.Msg{From: r.ID(), Entries: diff, Ack: k == ackTo})
			if k == ackTo {
				ackTo = graph.None
			}
		}
	}
	if ackTo != graph.None {
		// No changes to report (or ackTo is no longer a neighbor of the
		// flood): a pure ACK still must go back.
		if _, up := r.t.AdjCost(ackTo); up {
			r.send(ackTo, &lsu.Msg{From: r.ID(), Ack: true})
		}
	}
}

// setActive flips the phase flag, notifying OnPhase on real transitions.
func (r *Router) setActive(a bool) {
	if r.active == a {
		return
	}
	r.active = a
	if r.OnPhase != nil {
		r.OnPhase(a)
	}
}

func (r *Router) recomputeSuccessors() {
	nbrs := r.t.Neighbors()
	for j := range r.succ {
		jid := graph.NodeID(j)
		if jid == r.ID() {
			r.succ[j] = nil
			continue
		}
		set := r.succ[j][:0]
		for _, k := range nbrs {
			if numeric.Closer(r.t.NbrDist(jid, k), r.fd[j]) {
				set = append(set, k)
			}
		}
		r.succ[j] = set
	}
}
