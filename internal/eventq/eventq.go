// Package eventq implements the discrete-event scheduler core: a binary-heap
// priority queue of timestamped events with stable FIFO ordering among
// events scheduled for the same instant. Stability matters for protocol
// correctness — MPDA assumes messages on a link are delivered in the order
// sent, and equal-time events must not be reordered by the heap.
package eventq

// Event is a callback scheduled at an absolute simulation time.
type Event struct {
	time float64
	seq  uint64
	fn   func()
	// index into the heap, -1 once popped or canceled.
	index int
}

// Time returns the absolute time the event fires at.
func (e *Event) Time() float64 { return e.time }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

// Queue is a min-heap of events ordered by (time, insertion sequence).
// The zero value is ready for use. Queue is not safe for concurrent use:
// the simulator is single-threaded by design, which keeps runs reproducible.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at absolute time t and returns a handle that can cancel
// it. It panics on a nil fn (always a programming error).
func (q *Queue) Push(t float64, fn func()) *Event {
	if fn == nil {
		panic("eventq: Push with nil fn")
	}
	e := &Event{time: t, seq: q.seq, fn: fn, index: len(q.heap)}
	q.seq++
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Pop removes and returns the earliest event. It returns nil when empty.
func (q *Queue) Pop() *Event {
	for {
		if len(q.heap) == 0 {
			return nil
		}
		e := q.heap[0]
		last := len(q.heap) - 1
		q.swap(0, last)
		q.heap = q.heap[:last]
		if last > 0 {
			q.down(0)
		}
		e.index = -1
		if e.fn == nil { // canceled
			continue
		}
		return e
	}
}

// Peek returns the earliest pending event without removing it.
func (q *Queue) Peek() *Event {
	for len(q.heap) > 0 && q.heap[0].fn == nil {
		// Discard the canceled top without touching live events.
		e := q.heap[0]
		last := len(q.heap) - 1
		q.swap(0, last)
		q.heap = q.heap[:last]
		if last > 0 {
			q.down(0)
		}
		e.index = -1
	}
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op. Cancellation is O(1); the slot is
// reclaimed lazily on Pop.
func (q *Queue) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.fn = nil
}

// Run pops and executes the canceled-filtered event stream.
// Fire invokes the event's callback.
func (e *Event) Fire() { e.fn() }

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}
