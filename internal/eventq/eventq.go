// Package eventq implements the discrete-event scheduler core: a binary-heap
// priority queue of timestamped events ordered by (time, origin priority,
// insertion sequence). Equal-time events fire grouped by origin — the model
// entity (router, link, traffic source) whose execution scheduled them — and
// in FIFO order within one origin. Stability within an origin matters for
// protocol correctness: MPDA assumes messages on a link are delivered in the
// order sent. The origin rank makes the equal-time order a function of the
// model alone, not of global push order, which is what lets a sharded run
// (internal/despart) replay the exact schedule of a serial run: each origin's
// pushes happen in that origin's own deterministic execution order on
// whichever shard owns it.
//
// The queue owns a free list of Event records: the simulator pushes and pops
// millions of events per run, and recycling them keeps the hot path
// allocation-free at steady state. Recycling is safe because the engine is
// single-threaded; stale Handles are defused by a per-event generation
// counter, so holding a handle past its event's lifetime is always harmless.
package eventq

// Event is a callback scheduled at an absolute simulation time. Events are
// owned and recycled by their Queue; external code interacts with them
// through Handles and the *Event returned by Pop (valid until Recycle).
type Event struct {
	time float64
	pri  uint64
	seq  uint64
	fn   func()
	// index into the heap, -1 once popped or canceled.
	index int
	// gen increments every time the record is recycled; Handles carry the
	// generation they were issued for, which makes stale handles inert.
	gen uint64
}

// Time returns the absolute time the event fires at.
func (e *Event) Time() float64 { return e.time }

// Pri returns the event's origin priority (see PushPri).
func (e *Event) Pri() uint64 { return e.pri }

// Fire invokes the event's callback.
func (e *Event) Fire() { e.fn() }

// Handle refers to one scheduled event. It is a small value type (copying is
// cheap and allocation-free) and stays valid forever: once the event fires,
// is canceled, or its record is recycled for a new event, the handle simply
// reports not-scheduled and Cancel through it becomes a no-op.
type Handle struct {
	ev  *Event
	gen uint64
}

// Scheduled reports whether the handle's event is still pending.
func (h Handle) Scheduled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0 && h.ev.fn != nil
}

// Time returns the absolute fire time of the handle's event, or 0 when the
// handle is no longer scheduled.
func (h Handle) Time() float64 {
	if !h.Scheduled() {
		return 0
	}
	return h.ev.time
}

// Queue is a min-heap of events ordered by (time, origin priority,
// insertion sequence). The zero value is ready for use. Queue is not safe
// for concurrent use: each simulation shard is single-threaded by design,
// which keeps runs reproducible.
type Queue struct {
	heap []*Event
	seq  uint64
	free []*Event
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at absolute time t with origin priority zero. It panics
// on a nil fn (always a programming error).
func (q *Queue) Push(t float64, fn func()) Handle { return q.PushPri(t, 0, fn) }

// PushPri schedules fn at absolute time t with the given origin priority and
// returns a handle that can cancel it. Among equal-time events, lower
// priorities fire first; equal (time, pri) events fire in push order.
func (q *Queue) PushPri(t float64, pri uint64, fn func()) Handle {
	if fn == nil {
		panic("eventq: Push with nil fn")
	}
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.time, e.pri, e.seq, e.fn, e.index = t, pri, q.seq, fn, len(q.heap)
	} else {
		e = &Event{time: t, pri: pri, seq: q.seq, fn: fn, index: len(q.heap)}
	}
	q.seq++
	q.heap = append(q.heap, e)
	q.up(e.index)
	return Handle{ev: e, gen: e.gen}
}

// removeTop detaches and returns the root of the heap, restoring the heap
// property. It is the single heap-removal primitive shared by Pop and Peek.
func (q *Queue) removeTop() *Event {
	e := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	e.index = -1
	return e
}

// Pop removes and returns the earliest live event, lazily discarding
// canceled ones. It returns nil when empty. The returned event is valid
// until it is recycled (the engine recycles it after Fire).
func (q *Queue) Pop() *Event {
	for len(q.heap) > 0 {
		e := q.removeTop()
		if e.fn == nil { // canceled: reclaim the record immediately
			q.Recycle(e)
			continue
		}
		return e
	}
	return nil
}

// Peek returns the earliest pending event without removing it, draining any
// canceled events off the top through the same removal path Pop uses.
func (q *Queue) Peek() *Event {
	for len(q.heap) > 0 && q.heap[0].fn == nil {
		q.Recycle(q.removeTop())
	}
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Cancel prevents a pending event from firing. Canceling an already-fired,
// already-canceled, or recycled event is a no-op. Cancellation is O(1); the
// slot is reclaimed lazily on Pop/Peek.
func (q *Queue) Cancel(h Handle) {
	if h.ev == nil || h.ev.gen != h.gen {
		return
	}
	h.ev.fn = nil
}

// Recycle returns a popped event record to the free list. Only events
// obtained from Pop (after firing) may be recycled; recycling bumps the
// generation so outstanding Handles to the old lifetime go inert.
func (q *Queue) Recycle(e *Event) {
	if e == nil || e.index >= 0 {
		return
	}
	e.gen++
	e.fn = nil
	q.free = append(q.free, e)
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	//lint:floateq-ok heap comparators need a strict weak order; tolerant equality is not transitive
	if a.time != b.time {
		return a.time < b.time
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}
