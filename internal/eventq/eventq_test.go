package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"minroute/internal/rng"
)

func drainTimes(q *Queue) []float64 {
	var out []float64
	for {
		e := q.Pop()
		if e == nil {
			return out
		}
		out = append(out, e.Time())
	}
}

func TestOrdering(t *testing.T) {
	var q Queue
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		q.Push(tm, func() {})
	}
	got := drainTimes(&q)
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestStableFIFOAtSameTime(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(1.0, func() { fired = append(fired, i) })
	}
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Fire()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events reordered: %v", fired)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Push(1, func() { fired = true })
	q.Push(2, func() {})
	q.Cancel(e)
	if e.Scheduled() {
		// Cancel leaves it in the heap but marks it dead; Scheduled is
		// about heap membership, so popping it must skip the callback.
		t.Log("canceled event still nominally in heap (lazy removal)")
	}
	n := 0
	for {
		ev := q.Pop()
		if ev == nil {
			break
		}
		ev.Fire()
		n++
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if n != 1 {
		t.Fatalf("popped %d events, want 1", n)
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var q Queue
	q.Cancel(Handle{}) // must not panic
	if (Handle{}).Scheduled() {
		t.Fatal("zero Handle reports scheduled")
	}
}

func TestRecycleReusesRecords(t *testing.T) {
	var q Queue
	h := q.Push(1, func() {})
	e := q.Pop()
	if e == nil || !sameEvent(h, e) {
		t.Fatal("Pop did not return the pushed event")
	}
	q.Recycle(e)
	h2 := q.Push(2, func() {})
	if !sameEvent(h2, e) {
		t.Fatal("Push after Recycle did not reuse the freed record")
	}
	if h.Scheduled() {
		t.Fatal("stale handle reports scheduled after its record was reused")
	}
	if !h2.Scheduled() {
		t.Fatal("fresh handle not scheduled")
	}
}

func TestStaleHandleCancelIsInert(t *testing.T) {
	var q Queue
	h := q.Push(1, func() {})
	q.Recycle(q.Pop())
	fired := false
	h2 := q.Push(2, func() { fired = true }) // reuses the record behind h
	q.Cancel(h)                              // stale: must not kill the new event
	if !h2.Scheduled() {
		t.Fatal("stale Cancel defused a live event")
	}
	if e := q.Pop(); e != nil {
		e.Fire()
	}
	if !fired {
		t.Fatal("live event did not fire after stale Cancel")
	}
}

func TestRecycleScheduledIsNoOp(t *testing.T) {
	var q Queue
	h := q.Push(1, func() {})
	q.Recycle(h.ev) // still in the heap: must be refused
	if !h.Scheduled() {
		t.Fatal("Recycle of a scheduled event was not refused")
	}
	if got := drainTimes(&q); len(got) != 1 || got[0] != 1 {
		t.Fatalf("drain = %v, want [1]", got)
	}
}

func sameEvent(h Handle, e *Event) bool { return h.ev == e }

func TestPeekSkipsCanceled(t *testing.T) {
	var q Queue
	e1 := q.Push(1, func() {})
	q.Push(2, func() {})
	q.Cancel(e1)
	p := q.Peek()
	if p == nil || p.Time() != 2 {
		t.Fatalf("Peek = %v, want event at t=2", p)
	}
}

func TestPeekEmpty(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue not nil")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue not nil")
	}
}

func TestPushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Push(nil) did not panic")
		}
	}()
	var q Queue
	q.Push(1, nil)
}

func TestLen(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("empty queue Len != 0")
	}
	q.Push(1, func() {})
	q.Push(2, func() {})
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestPropertyHeapOrder(t *testing.T) {
	check := func(seed uint64, n16 uint16) bool {
		n := int(n16%500) + 1
		r := rng.New(seed)
		var q Queue
		times := make([]float64, n)
		for i := range times {
			times[i] = r.Float64() * 1000
			q.Push(times[i], func() {})
		}
		got := drainTimes(&q)
		sort.Float64s(times)
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInterleavedPushPop(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		var q Queue
		last := -1.0
		clock := 0.0
		for op := 0; op < 2000; op++ {
			if q.Len() == 0 || r.Float64() < 0.55 {
				// Future events only: schedule at or after the current clock,
				// as the simulator does.
				q.Push(clock+r.Float64()*10, func() {})
			} else {
				e := q.Pop()
				if e.Time() < last && last >= 0 {
					return false // time went backwards
				}
				last = e.Time()
				clock = e.Time()
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPushPop mirrors the engine's steady state: pop, fire, recycle,
// push. With the free list this runs allocation-free.
func BenchmarkPushPop(b *testing.B) {
	r := rng.New(1)
	var q Queue
	for i := 0; i < 1000; i++ {
		q.Push(r.Float64(), func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		t := e.Time()
		q.Recycle(e)
		q.Push(t+r.Float64(), fn)
	}
}

// BenchmarkPushPopNoRecycle measures the cost when popped events are not
// returned to the free list (one allocation per Push, as before the diet).
func BenchmarkPushPopNoRecycle(b *testing.B) {
	r := rng.New(1)
	var q Queue
	for i := 0; i < 1000; i++ {
		q.Push(r.Float64(), func() {})
	}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.Push(e.Time()+r.Float64(), fn)
	}
}

// BenchmarkCancel measures the cancel-heavy timer pattern: push two, cancel
// one, pop past the corpse.
func BenchmarkCancel(b *testing.B) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1000; i++ {
		q.Push(r.Float64(), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		t := e.Time()
		q.Recycle(e)
		h := q.Push(t+r.Float64(), fn)
		q.Cancel(h)
		q.Push(t+r.Float64(), fn)
	}
}
