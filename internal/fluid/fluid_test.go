package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/alloc"
	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/linkcost"
	"minroute/internal/topo"
)

const pktBits = 8000.0

// lineGraph builds 0-1-2-3 with 1 Mb/s links.
func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddNode(n)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddDuplex(graph.NodeID(i), graph.NodeID(i+1), 1e6, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// spRouting returns shortest-path (hop count) single-path routing over g.
func spRouting(g *graph.Graph) Routing {
	return RoutingFunc(func(i, j graph.NodeID) alloc.Params {
		view := dijkstra.GraphView{G: g, Cost: func(l *graph.Link) float64 { return 1 }}
		res := dijkstra.Run(view, i)
		nh := res.NextHop(j)
		if nh == graph.None {
			return nil
		}
		return alloc.Single(nh)
	})
}

func TestSolveSingleFlowOnPath(t *testing.T) {
	g := lineGraph(t)
	cfg := Config{Graph: g, MeanPacketBits: pktBits, Flows: []topo.Flow{
		{Name: "f", Src: 0, Dst: 3, Rate: 4e5},
	}}
	res, err := Solve(cfg, spRouting(g))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := res.Flow(graph.NodeID(i), graph.NodeID(i+1)); got != 4e5 {
			t.Fatalf("flow on %d->%d = %v, want 4e5", i, i+1, got)
		}
	}
	if res.Flow(1, 0) != 0 {
		t.Fatal("reverse link carries traffic")
	}
	// Node traffic: every node on the path carries t = rate; the
	// destination's accumulated arrival equals the offered rate.
	if res.NodeTraffic[3][0] != 4e5 || res.NodeTraffic[3][1] != 4e5 || res.NodeTraffic[3][3] != 4e5 {
		t.Fatalf("node traffic = %v", res.NodeTraffic[3])
	}
	if res.Lost != 0 {
		t.Fatalf("lost = %v", res.Lost)
	}
}

func TestSolveSplitsTraffic(t *testing.T) {
	// Diamond 0->{1,2}->3 split 50/50.
	g := graph.New()
	for _, n := range []string{"s", "u", "v", "d"} {
		g.AddNode(n)
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddDuplex(e[0], e[1], 1e6, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	rt := RoutingFunc(func(i, j graph.NodeID) alloc.Params {
		if j != 3 {
			return nil
		}
		switch i {
		case 0:
			return alloc.Params{1: 0.5, 2: 0.5}
		case 1, 2:
			return alloc.Single(3)
		}
		return nil
	})
	cfg := Config{Graph: g, MeanPacketBits: pktBits, Flows: []topo.Flow{{Src: 0, Dst: 3, Rate: 6e5}}}
	res, err := Solve(cfg, rt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow(0, 1) != 3e5 || res.Flow(0, 2) != 3e5 {
		t.Fatalf("split flows = %v, %v", res.Flow(0, 1), res.Flow(0, 2))
	}
	if res.NodeTraffic[3][3] != 6e5 {
		t.Fatalf("arrivals at destination = %v", res.NodeTraffic[3][3])
	}

	// Delay: both two-hop paths are symmetric, so W equals one path's delay.
	d, err := Delays(cfg, rt, res)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 3e5 / pktBits
	mu := 1e6 / pktBits
	want := 2 * linkcost.MM1Delay(lambda, mu, 0.001)
	if math.Abs(d.FlowDelay[0]-want) > 1e-12 {
		t.Fatalf("flow delay = %v, want %v", d.FlowDelay[0], want)
	}
}

func TestSolveCycleDetected(t *testing.T) {
	g := lineGraph(t)
	rt := RoutingFunc(func(i, j graph.NodeID) alloc.Params {
		if j != 3 {
			return nil
		}
		switch i {
		case 0:
			return alloc.Single(1)
		case 1:
			return alloc.Single(0) // loop 0<->1
		}
		return nil
	})
	cfg := Config{Graph: g, MeanPacketBits: pktBits, Flows: []topo.Flow{{Src: 0, Dst: 3, Rate: 1e5}}}
	if _, err := Solve(cfg, rt); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestSolveLostTraffic(t *testing.T) {
	g := lineGraph(t)
	rt := RoutingFunc(func(i, j graph.NodeID) alloc.Params {
		if i == 0 && j == 3 {
			return alloc.Single(1)
		}
		return nil // router 1 has no route: traffic dies there
	})
	cfg := Config{Graph: g, MeanPacketBits: pktBits, Flows: []topo.Flow{{Src: 0, Dst: 3, Rate: 2e5}}}
	res, err := Solve(cfg, rt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 2e5 {
		t.Fatalf("lost = %v, want 2e5", res.Lost)
	}
	d, err := Delays(cfg, rt, res)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d.FlowDelay[0], 1) {
		t.Fatalf("unroutable flow delay = %v, want +Inf", d.FlowDelay[0])
	}
}

func TestDelaysSingleLinkMatchesTheory(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.AddDuplex(0, 1, 1e6, 0.002); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, MeanPacketBits: pktBits, Flows: []topo.Flow{{Src: 0, Dst: 1, Rate: 5e5}}}
	rt := spRouting(g)
	res, err := Solve(cfg, rt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delays(cfg, rt, res)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 5e5 / pktBits
	mu := 1e6 / pktBits
	if want := linkcost.MM1Delay(lambda, mu, 0.002); math.Abs(d.FlowDelay[0]-want) > 1e-12 {
		t.Fatalf("delay = %v, want %v", d.FlowDelay[0], want)
	}
	if want := linkcost.MM1Total(lambda, mu, 0.002); math.Abs(d.TotalDelay-want) > 1e-12 {
		t.Fatalf("D_T = %v, want %v", d.TotalDelay, want)
	}
	if math.Abs(d.MaxUtilization-0.5) > 1e-12 {
		t.Fatalf("max utilization = %v, want 0.5", d.MaxUtilization)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Config{}, spRouting(graph.New())); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := lineGraph(t)
	if _, err := Solve(Config{Graph: g, MeanPacketBits: 0}, spRouting(g)); err == nil {
		t.Fatal("zero packet size accepted")
	}
	if _, err := Solve(Config{Graph: g, MeanPacketBits: 1, Flows: []topo.Flow{{Rate: -1}}}, spRouting(g)); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// Property: on random graphs with shortest-path routing, traffic is
// conserved: arrivals at each destination equal the offered load toward it.
func TestPropertyConservation(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%8) + 3
		g := topo.Random(seed, n, n, 1e6, 1e7, 1e-3)
		flows := []topo.Flow{
			{Src: 0, Dst: graph.NodeID(n - 1), Rate: 1e5},
			{Src: graph.NodeID(n - 1), Dst: 0, Rate: 2e5},
			{Src: graph.NodeID(n / 2), Dst: 0, Rate: 3e5},
		}
		cfg := Config{Graph: g, MeanPacketBits: pktBits, Flows: flows}
		rt := spRouting(g)
		res, err := Solve(cfg, rt)
		if err != nil {
			return false
		}
		if res.Lost != 0 {
			return false
		}
		// Arrivals at each destination must equal offered load toward it.
		byDest := map[graph.NodeID]float64{}
		for _, f := range flows {
			byDest[f.Dst] += f.Rate
		}
		for dst, want := range byDest {
			if math.Abs(res.NodeTraffic[dst][dst]-want) > 1e-6 {
				return false
			}
		}
		// Link flows are consistent with node traffic: total on all links
		// equals sum over nodes of forwarded traffic.
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveCAIRN(b *testing.B) {
	n := topo.CAIRN()
	cfg := Config{Graph: n.Graph, MeanPacketBits: pktBits, Flows: n.Flows}
	rt := spRouting(n.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cfg, rt); err != nil {
			b.Fatal(err)
		}
	}
}
