// Package fluid evaluates a routing-parameter assignment on the fluid
// (flow) model of the paper's Section 2: given the offered traffic r_ij and
// the routing parameters φ_ijk, it solves the conservation equations
//
//	t_ij = r_ij + Σ_k t_kj φ_kji                  (Eq. 1)
//	f_ik = Σ_j t_ij φ_ijk                          (Eq. 2)
//
// and computes the M/M/1 delay quantities: the total expected delay D_T of
// Eq. 3 and the expected end-to-end delay of each flow. The solver requires
// the per-destination routing graphs to be acyclic — which every routing
// scheme in this repository guarantees — and processes them in topological
// order, so one evaluation is O(N·L).
package fluid

import (
	"fmt"
	"math"

	"minroute/internal/alloc"
	"minroute/internal/graph"
	"minroute/internal/linkcost"
	"minroute/internal/topo"
)

// Routing supplies the routing parameters: Fractions(i, j) returns φ_ij·,
// the split of router i's traffic for destination j over its successors.
// A nil result means router i has no route to j.
type Routing interface {
	Fractions(i, j graph.NodeID) alloc.Params
}

// RoutingFunc adapts a function to the Routing interface.
type RoutingFunc func(i, j graph.NodeID) alloc.Params

// Fractions implements Routing.
func (f RoutingFunc) Fractions(i, j graph.NodeID) alloc.Params { return f(i, j) }

// Config describes the evaluation setting.
type Config struct {
	Graph *graph.Graph
	Flows []topo.Flow
	// MeanPacketBits converts bit rates to packet rates for the M/M/1
	// queueing terms (the paper's f in packets/second).
	MeanPacketBits float64
}

func (c Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("fluid: nil graph")
	}
	if c.MeanPacketBits <= 0 {
		return fmt.Errorf("fluid: non-positive mean packet size")
	}
	for _, f := range c.Flows {
		if f.Rate < 0 {
			return fmt.Errorf("fluid: negative rate for flow %s", f.Name)
		}
	}
	return nil
}

// Result holds the solved traffic quantities, all in bits per second.
type Result struct {
	// NodeTraffic[j][i] is t_ij: traffic at router i destined for j.
	NodeTraffic [][]float64
	// LinkFlow[from][to] is f_ik.
	LinkFlow map[[2]graph.NodeID]float64
	// Lost is offered traffic arriving at a router with no successors.
	Lost float64
}

// Flow returns f_ik in bits per second.
func (r *Result) Flow(from, to graph.NodeID) float64 {
	return r.LinkFlow[[2]graph.NodeID{from, to}]
}

// Solve computes node traffic and link flows under routing rt. It returns
// an error if any per-destination routing graph contains a cycle.
func Solve(cfg Config, rt Routing) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := cfg.Graph
	n := g.NumNodes()
	res := &Result{
		NodeTraffic: make([][]float64, n),
		LinkFlow:    make(map[[2]graph.NodeID]float64),
	}
	for j := 0; j < n; j++ {
		res.NodeTraffic[j] = make([]float64, n)
	}
	for _, f := range cfg.Flows {
		res.NodeTraffic[f.Dst][f.Src] += f.Rate
	}

	for j := 0; j < n; j++ {
		if err := solveDest(cfg, rt, graph.NodeID(j), res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// solveDest propagates destination-j traffic through the successor graph in
// topological order (Kahn's algorithm).
func solveDest(cfg Config, rt Routing, j graph.NodeID, res *Result) error {
	g := cfg.Graph
	n := g.NumNodes()
	t := res.NodeTraffic[j]

	// indeg[i] counts routing predecessors of i for destination j.
	indeg := make([]int, n)
	frac := make([]alloc.Params, n)
	for i := 0; i < n; i++ {
		if graph.NodeID(i) == j {
			continue
		}
		phi := rt.Fractions(graph.NodeID(i), j)
		frac[i] = phi
		for k, v := range phi {
			if v > 0 {
				indeg[k]++
			}
		}
	}
	queue := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, graph.NodeID(i))
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		if i != j && t[i] > 0 {
			if len(frac[i]) == 0 {
				res.Lost += t[i]
			} else {
				//lint:maporder-ok each key's share lands in distinct buckets t[k] and LinkFlow[{i,k}]
				for k, v := range frac[i] {
					if v <= 0 {
						continue
					}
					share := t[i] * v
					t[k] += share
					res.LinkFlow[[2]graph.NodeID{i, k}] += share
				}
			}
		}
		if i != j {
			// Sorted keys: the release order decides the topological
			// processing order, which in turn fixes the FP summation order
			// of downstream accumulations.
			for _, k := range frac[i].Keys() {
				if frac[i][k] > 0 {
					indeg[k]--
					if indeg[k] == 0 {
						queue = append(queue, k)
					}
				}
			}
		}
	}
	if processed != n {
		return fmt.Errorf("fluid: routing graph for destination %d contains a cycle", j)
	}
	return nil
}

// DelayResult holds the delay metrics for one evaluation.
type DelayResult struct {
	// FlowDelay[x] is the expected end-to-end per-packet delay of
	// cfg.Flows[x] in seconds; +Inf when the flow has no complete route.
	FlowDelay []float64
	// NodeDelay[j][i] is W_ij: expected delay from router i to destination j.
	NodeDelay [][]float64
	// TotalDelay is the paper's D_T = Σ_links D_ik(f_ik) with f in
	// packets/second (a delay-weighted packet rate).
	TotalDelay float64
	// MaxUtilization is the highest λ/μ over all links.
	MaxUtilization float64
}

// Delays computes per-flow expected delays and D_T for the solved flows.
func Delays(cfg Config, rt Routing, res *Result) (*DelayResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := cfg.Graph
	n := g.NumNodes()
	out := &DelayResult{
		FlowDelay: make([]float64, len(cfg.Flows)),
		NodeDelay: make([][]float64, n),
	}

	// Per-packet delay of each link under the solved flows.
	linkDelay := make(map[[2]graph.NodeID]float64, g.NumLinks())
	for _, l := range g.Links() {
		lambda := res.Flow(l.From, l.To) / cfg.MeanPacketBits
		mu := l.Capacity / cfg.MeanPacketBits
		linkDelay[[2]graph.NodeID{l.From, l.To}] = linkcost.MM1Delay(lambda, mu, l.PropDelay)
		out.TotalDelay += linkcost.MM1Total(lambda, mu, l.PropDelay)
		if u := linkcost.Utilization(lambda, mu); u > out.MaxUtilization {
			out.MaxUtilization = u
		}
	}

	for j := 0; j < n; j++ {
		w, err := nodeDelays(cfg, rt, graph.NodeID(j), linkDelay)
		if err != nil {
			return nil, err
		}
		out.NodeDelay[j] = w
	}
	for x, f := range cfg.Flows {
		out.FlowDelay[x] = out.NodeDelay[f.Dst][f.Src]
	}
	return out, nil
}

// nodeDelays computes W_ij = Σ_k φ_ijk (d_ik + W_kj) in reverse topological
// order of the destination-j successor graph.
func nodeDelays(cfg Config, rt Routing, j graph.NodeID, linkDelay map[[2]graph.NodeID]float64) ([]float64, error) {
	n := cfg.Graph.NumNodes()
	w := make([]float64, n)
	frac := make([]alloc.Params, n)
	// pending[i] counts successors whose W is not yet known.
	pending := make([]int, n)
	preds := make([][]graph.NodeID, n)
	for i := 0; i < n; i++ {
		w[i] = math.Inf(1)
		if graph.NodeID(i) == j {
			continue
		}
		phi := rt.Fractions(graph.NodeID(i), j)
		frac[i] = phi
		for k, v := range phi {
			if v > 0 {
				pending[i]++
				preds[k] = append(preds[k], graph.NodeID(i))
			}
		}
	}
	w[j] = 0
	queue := []graph.NodeID{j}
	// Routers with no successors resolve immediately (to +Inf).
	for i := 0; i < n; i++ {
		if graph.NodeID(i) != j && pending[i] == 0 {
			queue = append(queue, graph.NodeID(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		if k != j && pending[k] == 0 && len(frac[k]) > 0 {
			sum := 0.0
			// Sorted keys: FP addition does not associate, so the summation
			// order must not follow map iteration order.
			for _, m := range frac[k].Keys() {
				v := frac[k][m]
				if v <= 0 {
					continue
				}
				d, ok := linkDelay[[2]graph.NodeID{k, m}]
				if !ok {
					d = math.Inf(1) // φ over a vanished link
				}
				sum += v * (d + w[m])
			}
			w[k] = sum
		}
		for _, p := range preds[k] {
			pending[p]--
			if pending[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if done != n {
		return nil, fmt.Errorf("fluid: delay recursion found a cycle for destination %d", j)
	}
	return w, nil
}
