// Package netsvg renders network topologies as SVG diagrams: nodes placed
// by a deterministic force-directed layout, links drawn with width and
// color scaled by utilization. Used by cmd/mdrtopo and handy for inspecting
// what a routing scheme actually did to a network.
package netsvg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"minroute/internal/graph"
	"minroute/internal/rng"
)

// Options tunes the rendering. The zero value picks sensible defaults.
type Options struct {
	// Width and Height of the SVG canvas in pixels (default 800x600).
	Width, Height int
	// Seed makes the layout reproducible (default 1).
	Seed uint64
	// Iterations of the force-directed layout (default 300).
	Iterations int
	// Utilization, when non-nil, colors each directed link; keys are
	// {from, to}. Values are clamped to [0, 1.2].
	Utilization map[[2]graph.NodeID]float64
}

func (o *Options) setDefaults() {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.Height <= 0 {
		o.Height = 600
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Iterations <= 0 {
		o.Iterations = 300
	}
}

// Render returns a standalone SVG document for g.
func Render(g *graph.Graph, opt Options) string {
	opt.setDefaults()
	pos := Layout(g, opt.Seed, opt.Iterations)

	// Scale positions into the canvas with a margin.
	const margin = 50
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	//lint:maporder-ok min/max accumulation is exact and commutative
	for _, p := range pos {
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	sx := func(x float64) float64 { return margin + (x-minX)/spanX*float64(opt.Width-2*margin) }
	sy := func(y float64) float64 { return margin + (y-minY)/spanY*float64(opt.Height-2*margin) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		opt.Width, opt.Height, opt.Width, opt.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opt.Width, opt.Height)

	// Links (draw duplex pairs once unless utilizations differ, in which
	// case two slightly offset lines are drawn).
	drawn := make(map[[2]graph.NodeID]bool)
	for _, l := range g.Links() {
		key := [2]graph.NodeID{l.From, l.To}
		rev := [2]graph.NodeID{l.To, l.From}
		if drawn[rev] && opt.Utilization == nil {
			continue
		}
		drawn[key] = true
		x1, y1 := sx(pos[l.From][0]), sy(pos[l.From][1])
		x2, y2 := sx(pos[l.To][0]), sy(pos[l.To][1])
		u := 0.0
		if opt.Utilization != nil {
			u = math.Min(math.Max(opt.Utilization[key], 0), 1.2)
			// Offset the two directions perpendicular to the link.
			dx, dy := x2-x1, y2-y1
			norm := math.Hypot(dx, dy)
			if norm > 0 {
				ox, oy := -dy/norm*2.5, dx/norm*2.5
				x1, y1, x2, y2 = x1+ox, y1+oy, x2+ox, y2+oy
			}
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"><title>%s → %s%s</title></line>`+"\n",
			x1, y1, x2, y2, utilColor(u), 1.5+3*u,
			esc(g.Name(l.From)), esc(g.Name(l.To)), utilLabel(opt.Utilization, key))
	}

	// Nodes.
	for _, id := range g.Nodes() {
		x, y := sx(pos[id][0]), sy(pos[id][1])
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="10" fill="#4878d0" stroke="#1f3f7a"/>`+"\n", x, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" fill="#111">%s</text>`+"\n",
			x, y-14, esc(g.Name(id)))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func utilLabel(util map[[2]graph.NodeID]float64, key [2]graph.NodeID) string {
	if util == nil {
		return ""
	}
	return fmt.Sprintf(" (util %.2f)", util[key])
}

// utilColor maps utilization to a grey→orange→red ramp.
func utilColor(u float64) string {
	switch {
	case u <= 0.01:
		return "#bbb"
	case u < 0.5:
		return "#7aa644"
	case u < 0.8:
		return "#e8a33d"
	default:
		return "#d64545"
	}
}

// Layout computes node positions with a deterministic Fruchterman-Reingold
// force-directed layout on the unit square.
func Layout(g *graph.Graph, seed uint64, iterations int) map[graph.NodeID][2]float64 {
	n := g.NumNodes()
	pos := make(map[graph.NodeID][2]float64, n)
	r := rng.New(seed)
	for _, id := range g.Nodes() {
		pos[id] = [2]float64{r.Float64(), r.Float64()}
	}
	if n < 2 {
		return pos
	}
	k := math.Sqrt(1.0 / float64(n)) // ideal edge length
	temp := 0.1
	cool := temp / float64(iterations+1)

	nodes := g.Nodes()
	disp := make(map[graph.NodeID][2]float64, n)
	for it := 0; it < iterations; it++ {
		for _, id := range nodes {
			disp[id] = [2]float64{}
		}
		// Repulsion between all pairs.
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				a, c := nodes[i], nodes[j]
				dx := pos[a][0] - pos[c][0]
				dy := pos[a][1] - pos[c][1]
				d := math.Hypot(dx, dy)
				if d < 1e-9 {
					dx, dy, d = 1e-4, 1e-4, 1.5e-4
				}
				f := k * k / d
				disp[a] = [2]float64{disp[a][0] + dx/d*f, disp[a][1] + dy/d*f}
				disp[c] = [2]float64{disp[c][0] - dx/d*f, disp[c][1] - dy/d*f}
			}
		}
		// Attraction along links (each duplex pair pulls twice, harmless).
		for _, l := range g.Links() {
			dx := pos[l.From][0] - pos[l.To][0]
			dy := pos[l.From][1] - pos[l.To][1]
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				continue
			}
			f := d * d / k
			disp[l.From] = [2]float64{disp[l.From][0] - dx/d*f, disp[l.From][1] - dy/d*f}
			disp[l.To] = [2]float64{disp[l.To][0] + dx/d*f, disp[l.To][1] + dy/d*f}
		}
		// Apply displacements, limited by temperature.
		for _, id := range nodes {
			dx, dy := disp[id][0], disp[id][1]
			d := math.Hypot(dx, dy)
			if d > 0 {
				step := math.Min(d, temp)
				pos[id] = [2]float64{pos[id][0] + dx/d*step, pos[id][1] + dy/d*step}
			}
		}
		temp -= cool
		if temp < 1e-4 {
			temp = 1e-4
		}
	}
	return pos
}

// SortedUtilization converts port counters into the map Render consumes;
// exposed as a helper for callers holding per-link bit counts.
func SortedUtilization(g *graph.Graph, bits func(from, to graph.NodeID) float64, elapsed float64) map[[2]graph.NodeID]float64 {
	out := make(map[[2]graph.NodeID]float64, g.NumLinks())
	links := g.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, l := range links {
		if elapsed > 0 && l.Capacity > 0 {
			out[[2]graph.NodeID{l.From, l.To}] = bits(l.From, l.To) / elapsed / l.Capacity
		}
	}
	return out
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
