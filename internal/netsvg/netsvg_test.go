package netsvg

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/topo"
)

func TestLayoutDeterministic(t *testing.T) {
	g := topo.NET1().Graph
	a := Layout(g, 7, 100)
	b := Layout(g, 7, 100)
	for id := range a {
		if a[id] != b[id] {
			t.Fatalf("layout not deterministic at node %d", id)
		}
	}
	c := Layout(g, 8, 100)
	same := true
	for id := range a {
		if a[id] != c[id] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical layouts")
	}
}

func TestLayoutSpreadsNodes(t *testing.T) {
	g := topo.Ring(6, 1e6, 1e-3)
	pos := Layout(g, 3, 300)
	// No two nodes may collapse onto the same point.
	ids := g.Nodes()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := pos[ids[i]], pos[ids[j]]
			if math.Hypot(a[0]-b[0], a[1]-b[1]) < 0.01 {
				t.Fatalf("nodes %d and %d collapsed", ids[i], ids[j])
			}
		}
	}
}

func TestLayoutNeighborsCloserThanFarNodes(t *testing.T) {
	// On a long ring, adjacent nodes should end up nearer each other than
	// antipodal ones.
	g := topo.Ring(10, 1e6, 1e-3)
	pos := Layout(g, 5, 400)
	d := func(a, b graph.NodeID) float64 {
		return math.Hypot(pos[a][0]-pos[b][0], pos[a][1]-pos[b][1])
	}
	if !(d(0, 1) < d(0, 5)) {
		t.Fatalf("adjacent distance %v not below antipodal %v", d(0, 1), d(0, 5))
	}
}

func TestRenderWellFormed(t *testing.T) {
	net := topo.NET1()
	util := map[[2]graph.NodeID]float64{{4, 5}: 0.9, {4, 8}: 0.3}
	out := Render(net.Graph, Options{Utilization: util})
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "circle", "line", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Node labels present.
	if !strings.Contains(out, ">0<") || !strings.Contains(out, ">9<") {
		t.Fatal("node labels missing")
	}
}

func TestRenderEscapesNames(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a<b"), g.AddNode(`c"d`)
	if err := g.AddDuplex(a, b, 1e6, 0); err != nil {
		t.Fatal(err)
	}
	out := Render(g, Options{})
	if strings.Contains(out, "a<b") {
		t.Fatal("names not escaped")
	}
}

func TestUtilColorRamp(t *testing.T) {
	if utilColor(0) == utilColor(1.0) {
		t.Fatal("idle and saturated links share a color")
	}
}

func TestSortedUtilization(t *testing.T) {
	g := topo.Ring(3, 1e6, 0)
	bits := func(from, to graph.NodeID) float64 {
		if from == 0 && to == 1 {
			return 5e5 * 10 // half utilization over 10 s
		}
		return 0
	}
	u := SortedUtilization(g, bits, 10)
	if got := u[[2]graph.NodeID{0, 1}]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("util = %v", got)
	}
	if got := u[[2]graph.NodeID{1, 0}]; got != 0 {
		t.Fatalf("reverse util = %v", got)
	}
}

func TestRenderSingleNode(t *testing.T) {
	g := graph.New()
	g.AddNode("solo")
	out := Render(g, Options{})
	if !strings.Contains(out, "solo") {
		t.Fatal("single-node render broken")
	}
}
