package transport

import (
	"sync"
	"testing"

	"minroute/internal/leaktest"
)

// TestMemNetDelivery pins the switchboard basics: addressed delivery
// between endpoints, FIFO per sender, and self-delivery.
func TestMemNetDelivery(t *testing.T) {
	leaktest.Check(t)
	mn := NewMemNet()
	a, b := mn.Bind(), mn.Bind()
	defer a.Close()
	defer b.Close()

	if a.LocalAddr() == b.LocalAddr() {
		t.Fatalf("endpoints share address %q", a.LocalAddr())
	}
	for _, msg := range []string{"one", "two", "three"} {
		if err := a.WriteTo([]byte(msg), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 64)
	for _, want := range []string{"one", "two", "three"} {
		n, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != want {
			t.Fatalf("got %q want %q", buf[:n], want)
		}
	}
	// Self-delivery: a node's forwarder may hand packets to itself.
	if err := a.WriteTo([]byte("self"), a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	n, err := a.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "self" {
		t.Fatalf("got %q want %q", buf[:n], "self")
	}
}

// TestMemNetUnboundAndClosed asserts datagram semantics: writes to
// unknown or closed addresses silently drop, and Close unblocks readers
// with ErrClosed.
func TestMemNetUnboundAndClosed(t *testing.T) {
	leaktest.Check(t)
	mn := NewMemNet()
	a := mn.Bind()
	defer a.Close()

	if err := a.WriteTo([]byte("void"), "mem:999"); err != nil {
		t.Fatalf("write to unbound addr: %v", err)
	}
	b := mn.Bind()
	baddr := b.LocalAddr()
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 16)
		_, err := b.ReadFrom(buf)
		done <- err
	}()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked read after Close: %v, want ErrClosed", err)
	}
	wg.Wait()
	if err := a.WriteTo([]byte("late"), baddr); err != nil {
		t.Fatalf("write to closed addr: %v", err)
	}
}

// TestMemNetOverflowDrops asserts the inbox ring bounds memory: writes
// beyond the ring silently drop rather than block or grow.
func TestMemNetOverflowDrops(t *testing.T) {
	leaktest.Check(t)
	mn := NewMemNet()
	a, b := mn.Bind(), mn.Bind()
	defer a.Close()
	defer b.Close()
	for i := 0; i < memDatagramRing+100; i++ {
		if err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 4)
	for i := 0; i < memDatagramRing; i++ {
		if _, err := b.ReadFrom(buf); err != nil {
			t.Fatal(err)
		}
	}
	// The overflow was dropped; the inbox is empty again.
	if got := len(b.(*memDatagram).inbox); got != 0 {
		t.Fatalf("inbox holds %d datagrams after draining the ring", got)
	}
}

// TestUDPDatagramRoundTrip exercises the real-socket implementation over
// loopback, including the resolved-address cache on the hot path.
func TestUDPDatagramRoundTrip(t *testing.T) {
	leaktest.Check(t)
	a, err := BindUDPDatagram("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := BindUDPDatagram("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	buf := make([]byte, 128)
	for i := 0; i < 3; i++ { // repeat hits the addr cache after the first
		if err := a.WriteTo([]byte("ping"), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		n, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "ping" {
			t.Fatalf("got %q want %q", buf[:n], "ping")
		}
	}
	if err := a.WriteTo([]byte("x"), "not-an-addr"); err == nil {
		t.Fatal("unresolvable address accepted")
	}
}

// TestDatagramFaults pins the seeded injector: full loss drops everything,
// full duplication doubles everything, and a zero Fault is the identity.
func TestDatagramFaults(t *testing.T) {
	leaktest.Check(t)
	mn := NewMemNet()
	sink := mn.Bind()
	defer sink.Close()

	if d := mn.Bind(); WithDatagramFaults(d, Fault{}) != d {
		t.Fatal("zero Fault did not return the wrapped Datagram unchanged")
	}

	lossy := WithDatagramFaults(mn.Bind(), Fault{Seed: 1, LossProb: 1})
	defer lossy.Close()
	for i := 0; i < 50; i++ {
		if err := lossy.WriteTo([]byte("gone"), sink.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	dupy := WithDatagramFaults(mn.Bind(), Fault{Seed: 2, DupProb: 1})
	defer dupy.Close()
	const sent = 25
	for i := 0; i < sent; i++ {
		if err := dupy.WriteTo([]byte("twice"), sink.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sink.(*memDatagram).inbox); got != 2*sent {
		t.Fatalf("sink holds %d datagrams, want %d (all dup'd, none from lossy)", got, 2*sent)
	}
}
