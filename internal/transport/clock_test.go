package transport

import "sync"

// fakeClock is a manually advanced Clock for deterministic ARQ tests:
// nothing fires until the test calls Advance, and due timers fire in
// virtual-time order.
type fakeClock struct {
	mu     sync.Mutex
	now    float64
	timers []*fakeTimer
}

type fakeTimer struct {
	c       *fakeClock
	at      float64
	fn      func()
	fired   bool
	stopped bool
}

func newFakeClock() *fakeClock { return &fakeClock{} }

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) AfterFunc(d float64, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{c: c, at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return t
}

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Advance moves virtual time forward by d, firing due timers in time
// order. Callbacks run with the clock unlocked so they may arm new
// timers, which fire in the same Advance if they fall within the window.
func (c *fakeClock) Advance(d float64) {
	c.mu.Lock()
	target := c.now + d
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.stopped || t.fired || t.at > target {
				continue
			}
			if next == nil || t.at < next.at {
				next = t
			}
		}
		if next == nil {
			break
		}
		if next.at > c.now {
			c.now = next.at
		}
		next.fired = true
		fn := next.fn
		c.mu.Unlock()
		fn()
		c.mu.Lock()
	}
	c.now = target
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			live = append(live, t)
		}
	}
	c.timers = live
	c.mu.Unlock()
}
