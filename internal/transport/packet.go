package transport

import (
	"fmt"
	"net"
	"sync"
)

// MaxDatagram bounds one datagram on the packet layer. Loopback UDP
// carries up to ~64 KiB; a CAIRN-scale full-table LSU is under 2 KiB, so
// the bound is generous while still letting the ARQ use fixed read
// buffers.
const MaxDatagram = 64 << 10

// Packet is an unreliable datagram channel: writes may be lost,
// duplicated, or reordered; reads return whole datagrams. It is the layer
// beneath the ARQ — UDP in production, in-memory pairs in tests, and the
// fault injector wraps either.
type Packet interface {
	// WritePacket sends one datagram (best effort).
	WritePacket(b []byte) error
	// ReadPacket blocks for the next datagram, copying it into b and
	// returning its length. It returns an error once the channel closes.
	ReadPacket(b []byte) (int, error)
	// Close releases the channel and unblocks pending reads.
	Close() error
}

// UDPPacket is a Packet over one bound UDP socket. Bind first (which
// chooses the local port), exchange addresses out of band, then Connect to
// aim writes at the remote peer.
type UDPPacket struct {
	conn *net.UDPConn

	mu     sync.Mutex
	remote *net.UDPAddr
}

// BindUDP binds a UDP socket on local (e.g. "127.0.0.1:0").
func BindUDP(local string) (*UDPPacket, error) {
	addr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	// Best effort: a selective-repeat window of coalesced datagrams can
	// burst well past the platform default socket buffers.
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	return &UDPPacket{conn: conn}, nil
}

// LocalAddr returns the bound socket address.
func (u *UDPPacket) LocalAddr() string { return u.conn.LocalAddr().String() }

// Connect aims subsequent writes at remote.
func (u *UDPPacket) Connect(remote string) error {
	addr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.remote = addr
	u.mu.Unlock()
	return nil
}

// WritePacket sends one datagram to the connected remote.
func (u *UDPPacket) WritePacket(b []byte) error {
	u.mu.Lock()
	remote := u.remote
	u.mu.Unlock()
	if remote == nil {
		return fmt.Errorf("transport: UDP packet not connected")
	}
	_, err := u.conn.WriteToUDP(b, remote)
	return err
}

// ReadPacket blocks for the next datagram from anyone; the ARQ's CRC and
// sequence checks reject strays and corruption.
func (u *UDPPacket) ReadPacket(b []byte) (int, error) {
	n, _, err := u.conn.ReadFromUDP(b)
	return n, err
}

// Close closes the socket, unblocking reads.
func (u *UDPPacket) Close() error { return u.conn.Close() }

// memPacket is one side of an in-memory datagram pair. Delivery is FIFO
// and loss-free up to the ring capacity (overflow drops, like a NIC ring);
// wrap with WithFaults for loss/dup/reorder.
type memPacket struct {
	peer *memPacket

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  [][]byte
	closed bool
}

// memPacketRing bounds each side's inbox; beyond it datagrams drop.
const memPacketRing = 4096

// PacketPipe returns a connected pair of in-memory Packets.
func PacketPipe() (Packet, Packet) {
	a := &memPacket{}
	b := &memPacket{}
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	a.peer, b.peer = b, a
	return a, b
}

// WritePacket delivers one datagram into the peer's inbox; datagram
// semantics mean writes to a closed or full peer silently drop.
func (m *memPacket) WritePacket(b []byte) error {
	p := m.peer
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.inbox) >= memPacketRing {
		return nil
	}
	p.inbox = append(p.inbox, append([]byte(nil), b...))
	p.cond.Signal()
	return nil
}

// ReadPacket blocks for the next datagram.
func (m *memPacket) ReadPacket(b []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.inbox) == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		return 0, ErrClosed
	}
	d := m.inbox[0]
	m.inbox[0] = nil
	m.inbox = m.inbox[1:]
	return copy(b, d), nil
}

// Close closes this side; pending and future reads fail, writes from the
// peer drop.
func (m *memPacket) Close() error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}
