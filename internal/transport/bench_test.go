package transport_test

import (
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/transport"
	"minroute/internal/wire"
)

// benchFrame is a typical MPDA update: an 8-entry LSU.
func benchFrame(b *testing.B) *wire.Frame {
	b.Helper()
	m := &lsu.Msg{From: 3, Ack: true}
	for i := 0; i < 8; i++ {
		m.Entries = append(m.Entries, lsu.Entry{
			Op: lsu.OpAdd, Head: graph.NodeID(i), Tail: graph.NodeID(i + 1), Cost: 1.5 * float64(i+1),
		})
	}
	f, err := wire.NewLSU(m)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// pump measures one-way framed throughput: send b.N frames while a
// background goroutine drains the far side.
func pump(b *testing.B, tx, rx transport.Conn) {
	b.Helper()
	f := benchFrame(b)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			if _, err := rx.Recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(f); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

func BenchmarkPipeThroughput(b *testing.B) {
	x, y := transport.Pipe()
	defer x.Close()
	defer y.Close()
	pump(b, x, y)
}

func BenchmarkTCPThroughput(b *testing.B) {
	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	ch := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	x, err := transport.DialTCP(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer x.Close()
	y, ok := <-ch
	if !ok {
		b.Fatal("accept failed")
	}
	defer y.Close()
	pump(b, x, y)
}

func BenchmarkUDPARQThroughput(b *testing.B) {
	pa, err := transport.BindUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	pb, err := transport.BindUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := pa.Connect(pb.LocalAddr()); err != nil {
		b.Fatal(err)
	}
	if err := pb.Connect(pa.LocalAddr()); err != nil {
		b.Fatal(err)
	}
	x := transport.NewARQ(pa, transport.ARQConfig{}, newWallTimers())
	y := transport.NewARQ(pb, transport.ARQConfig{}, newWallTimers())
	defer x.Close()
	defer y.Close()
	pump(b, x, y)
}
