package transport

import (
	"math"
	"minroute/internal/leaktest"
	"sync"
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/wire"
)

// helloMTU is exactly one encoded hello frame (header + 4-byte payload +
// trailer); configuring it as the MTU forces one frame per datagram, which
// lets tests target loss at individual frames.
const helloMTU = wire.HeaderBytes + 4 + wire.TrailerBytes

// mustRecv receives one frame or fails the test after a wall deadline.
func mustRecv(t *testing.T, c Conn) *wire.Frame {
	t.Helper()
	type res struct {
		f   *wire.Frame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := c.Recv()
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Recv: %v", r.err)
		}
		return r.f
	case <-time.After(10 * time.Second):
		t.Fatalf("Recv: timed out")
		return nil
	}
}

// driveRecv receives one frame while repeatedly advancing the fake clock so
// retransmission timers can fire; the ARQ's write loop runs on goroutines,
// so timer deadlines are stamped asynchronously and a single up-front
// Advance can race past them.
func driveRecv(t *testing.T, clk *fakeClock, c Conn) *wire.Frame {
	t.Helper()
	type res struct {
		f   *wire.Frame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := c.Recv()
		ch <- res{f, err}
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("Recv: %v", r.err)
			}
			return r.f
		case <-time.After(time.Millisecond):
			clk.Advance(0.05)
		case <-deadline:
			t.Fatalf("Recv: timed out")
			return nil
		}
	}
}

// helloID extracts the node id from a hello frame.
func helloID(t *testing.T, f *wire.Frame) int {
	t.Helper()
	if f.Type != wire.TypeHello {
		t.Fatalf("got frame type %v, want hello", f.Type)
	}
	id, err := wire.HelloNode(f)
	if err != nil {
		t.Fatalf("HelloNode: %v", err)
	}
	return int(id)
}

func TestARQInOrderDelivery(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	a := NewARQ(pa, ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	// SACKs flow back asynchronously; the window must drain without any
	// timer help because the channel is loss-free.
	waitOutstandingZero(t, a)
}

func waitOutstandingZero(t *testing.T, c *ARQConn) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:nowall-ok test watchdog deadline, not protocol time
	for c.Outstanding() != 0 {
		if time.Now().After(deadline) { //lint:nowall-ok test watchdog deadline, not protocol time
			t.Fatalf("outstanding window never drained: %d left", c.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
}

// dropFirstPacket drops the first n data writes (SACK-sized frames pass),
// forcing recovery through retransmission.
type dropFirstPacket struct {
	Packet
	mu   sync.Mutex
	drop int
}

func (d *dropFirstPacket) WritePacket(b []byte) error {
	d.mu.Lock()
	if d.drop > 0 && len(b) > wire.HeaderBytes+wire.TrailerBytes {
		d.drop--
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	return d.Packet.WritePacket(b)
}

func TestARQRetransmitRecoversLoss(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	// First transmission and first retransmission both drop; the second
	// retransmission (per-frame backoff doubling) gets through.
	lossy := &dropFirstPacket{Packet: pa, drop: 2}
	a := NewARQ(lossy, ARQConfig{RTO: 0.02}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	if err := a.Send(wire.NewHello(7)); err != nil {
		t.Fatal(err)
	}
	if got := helloID(t, driveRecv(t, clk, b)); got != 7 {
		t.Fatalf("got id %d, want 7", got)
	}
	waitOutstandingZero(t, a)
}

// countingPacket counts writes passing through and can hold them until
// released, letting tests control exactly when the write loop drains.
type countingPacket struct {
	Packet
	mu   sync.Mutex
	n    int
	gate chan struct{} // nil: writes pass; else each write blocks on a recv
}

func (c *countingPacket) WritePacket(b []byte) error {
	c.mu.Lock()
	c.n++
	gate := c.gate
	c.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return c.Packet.WritePacket(b)
}

func (c *countingPacket) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// waitCount waits (wall clock) for the write count to reach want.
func (c *countingPacket) waitCount(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:nowall-ok test watchdog deadline, not protocol time
	for c.count() < want {
		if time.Now().After(deadline) { //lint:nowall-ok test watchdog deadline, not protocol time
			t.Fatalf("write count stuck at %d, want %d", c.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestARQPerFrameBackoffDoubles pins the per-frame retransmission schedule:
// with no receiver, one frame retransmits at RTO, then 2·RTO, then capped
// at MaxRTO — per frame, not per window.
func TestARQPerFrameBackoffDoubles(t *testing.T) {
	leaktest.Check(t)
	pa, _ := PacketPipe()
	clk := newFakeClock()
	cp := &countingPacket{Packet: pa}
	a := NewARQ(cp, ARQConfig{RTO: 0.1, MaxRTO: 0.4}, clk)
	defer a.Close()

	if err := a.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	cp.waitCount(t, 1) // initial transmission stamped at t=0
	clk.Advance(0.1)   // RTO fires
	cp.waitCount(t, 2) // retransmitted at t=0.1, next deadline t=0.3
	clk.Advance(0.1)   // t=0.2: mid-backoff, nothing fires
	time.Sleep(5 * time.Millisecond)
	if got := cp.count(); got != 2 {
		t.Fatalf("mid-backoff: %d writes, want 2", got)
	}
	clk.Advance(0.1) // t=0.3: doubled backoff expires
	cp.waitCount(t, 3)
	clk.Advance(0.4) // t=0.7: capped at MaxRTO=0.4
	cp.waitCount(t, 4)
}

// retxRecorder records retransmissions via the stats hook.
type retxRecorder struct {
	mu   sync.Mutex
	n    int
	fast int
	seqs map[uint32]bool
}

func (r *retxRecorder) stats() *ARQStats {
	return &ARQStats{Retransmit: func(seq uint32, rto float64, fast bool) {
		r.mu.Lock()
		r.n++
		if fast {
			r.fast++
		}
		if r.seqs == nil {
			r.seqs = make(map[uint32]bool)
		}
		r.seqs[seq] = true
		r.mu.Unlock()
	}}
}

func (r *retxRecorder) counts() (n, fast int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n, r.fast
}

// distinct returns the set of sequence numbers ever retransmitted.
func (r *retxRecorder) distinct() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint32, 0, len(r.seqs))
	//lint:maporder-ok order-insensitive set snapshot for a membership check
	for s := range r.seqs {
		out = append(out, s)
	}
	return out
}

// TestARQSelectiveRetransmit is the selective-repeat headline: lose one
// frame out of eight and only that frame is retransmitted — go-back-N
// would resend the whole suffix. The one-frame MTU makes each frame its
// own datagram so the dropper can target a single sequence number, and the
// duplicate SACKs from the frames behind the hole trigger fast retransmit.
// The RTO sits far beyond the drive horizon: driveRecv advances virtual
// time while it waits, and a default RTO lets a scheduler stall (race
// soak) expire timers for frames that were never lost — a legitimate
// spurious timeout the "only seq 1" assertion would misread as go-back-N.
func TestARQSelectiveRetransmit(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	rec := &retxRecorder{}
	lossy := &dropFirstPacket{Packet: pa, drop: 1}
	a := NewARQ(lossy, ARQConfig{RTO: 1000, MTU: helloMTU, Stats: rec.stats()}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 8
	// First datagram (seq 1) drops; 2..8 arrive out of order w.r.t. the
	// hole and accumulate in the reorder buffer, each provoking a
	// duplicate SACK at cum=0.
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, driveRecv(t, clk, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	waitOutstandingZero(t, a)
	for _, seq := range rec.distinct() {
		if seq != 1 {
			t.Fatalf("seq %d retransmitted though only seq 1 was lost — selective repeat must not resend the suffix", seq)
		}
	}
	if n, _ := rec.counts(); n == 0 {
		t.Fatalf("lost frame recovered without any recorded retransmission")
	}
}

// TestARQFastRetransmit verifies three duplicate SACKs retransmit the hole
// without any timer expiry: the clock never advances past the initial RTO.
func TestARQFastRetransmit(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	rec := &retxRecorder{}
	lossy := &dropFirstPacket{Packet: pa, drop: 1}
	// RTO far beyond the test horizon: only fast retransmit can recover.
	a := NewARQ(lossy, ARQConfig{RTO: 1000, MTU: helloMTU, Stats: rec.stats()}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 8
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
		// Pace the sends so the receiver SACKs each datagram individually —
		// back-to-back arrivals legitimately coalesce into one SACK, which
		// would starve the duplicate-SACK counter this test exercises.
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	waitOutstandingZero(t, a)
	total, fast := rec.counts()
	if total != 1 || fast != 1 {
		t.Fatalf("got %d retransmissions (%d fast), want exactly 1 fast", total, fast)
	}
}

// TestARQCoalescing verifies small frames queued while the writer is busy
// ride one datagram: with the first write held at the gate, 63 more Sends
// queue up and must drain in a single syscall once the gate opens.
func TestARQCoalescing(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	gate := make(chan struct{})
	cp := &countingPacket{Packet: pa, gate: gate}
	a := NewARQ(cp, ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 64
	// The lone first frame takes Send's inline fast path, so it must run in
	// its own goroutine: the gate holds that write, and with the window now
	// occupied the next Send queues for the write loop.
	errc := make(chan error, 1)
	go func() { errc <- a.Send(wire.NewHello(0)) }()
	cp.waitCount(t, 1) // Send goroutine is now blocked inside WritePacket
	// The second frame baits the write loop to the gate: only once it too
	// is provably parked inside WritePacket can the bulk be queued without
	// racing it — otherwise the loop may wake mid-queue, grab a partial
	// batch, and split the remainder across datagrams (the race soak hits
	// exactly that interleaving).
	if err := a.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	cp.waitCount(t, 2) // write loop is now blocked inside WritePacket
	for i := 2; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(gate) // release both gated writes; further writes pass freely
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	waitOutstandingZero(t, a)
	// Exactly three data datagrams: the two gated singles and the 62-frame
	// coalesced remainder — plus the SACKs a sends back for b's
	// (nonexistent) traffic, i.e. none.
	if got := cp.count(); got != 3 {
		t.Fatalf("%d datagrams for %d frames, want 3 (2 gated singles + 1 coalesced batch)", got, n)
	}
}

// TestARQRTOEstimator pins the SRTT/RTTVAR arithmetic (RFC 6298 gains) and
// the [MinRTO, MaxRTO] clamp.
func TestARQRTOEstimator(t *testing.T) {
	leaktest.Check(t)
	c := &ARQConn{cfg: ARQConfig{}.withDefaults()}
	c.updateRTOLocked(0.1)
	if c.srtt != 0.1 || c.rttvar != 0.05 {
		t.Fatalf("first sample: srtt=%v rttvar=%v, want 0.1/0.05", c.srtt, c.rttvar)
	}
	if got, want := c.rto, 0.1+4*0.05; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rto=%v, want %v", got, want)
	}
	c.updateRTOLocked(0.2)
	wantVar := 0.75*0.05 + 0.25*0.1
	wantSRTT := 0.875*0.1 + 0.125*0.2
	if math.Abs(c.rttvar-wantVar) > 1e-12 || math.Abs(c.srtt-wantSRTT) > 1e-12 {
		t.Fatalf("second sample: srtt=%v rttvar=%v, want %v/%v", c.srtt, c.rttvar, wantSRTT, wantVar)
	}
	// A near-zero sample must clamp to MinRTO, not collapse to zero.
	c2 := &ARQConn{cfg: ARQConfig{MinRTO: 0.004}.withDefaults()}
	c2.updateRTOLocked(0)
	c2.updateRTOLocked(0)
	if c2.rto != 0.004 {
		t.Fatalf("rto=%v, want MinRTO clamp 0.004", c2.rto)
	}
}

// TestARQWindowBlocks verifies Send exerts flow control: with no SACKs
// coming back, the Window+1'th Send blocks, and Close releases it with
// ErrClosed.
func TestARQWindowBlocks(t *testing.T) {
	leaktest.Check(t)
	pa, _ := PacketPipe()
	clk := newFakeClock()
	a := NewARQ(pa, ARQConfig{RTO: 1000, Window: 4}, clk)

	for i := 0; i < 4; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- a.Send(wire.NewHello(99)) }()
	select {
	case err := <-errCh:
		t.Fatalf("Send beyond window returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	a.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Fatalf("blocked Send after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("blocked Send never released by Close")
	}
}

func TestARQSendTooLarge(t *testing.T) {
	leaktest.Check(t)
	pa, _ := PacketPipe()
	a := NewARQ(pa, ARQConfig{}, newFakeClock())
	defer a.Close()
	// Oversize relative to the coalescing MTU is fine (ships alone); only a
	// frame that cannot fit any datagram is rejected.
	big := &wire.Frame{Type: wire.TypeHeartbeat, Payload: make([]byte, MaxDatagram)}
	if err := a.Send(big); err == nil {
		t.Fatalf("Send beyond MaxDatagram succeeded, want error")
	}
}

func TestARQDedup(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	// Duplicate every datagram on the wire; the receiver must still
	// deliver each frame exactly once. One-frame MTU so every frame is
	// individually duplicated.
	a := NewARQ(WithFaults(pa, Fault{Seed: 1, DupProb: 1}), ARQConfig{MTU: helloMTU}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 32
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	waitOutstandingZero(t, a)
	// No further frames may surface: send a sentinel and confirm it is
	// the very next delivery.
	if err := a.Send(wire.NewHello(999)); err != nil {
		t.Fatal(err)
	}
	if got := helloID(t, mustRecv(t, b)); got != 999 {
		t.Fatalf("after dedup run: got id %d, want sentinel 999", got)
	}
}

func TestARQReorder(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	// Swap every pair of datagrams; delivery order must be restored by
	// the reorder buffer without any retransmission. One-frame MTU so
	// datagram reordering is frame reordering.
	a := NewARQ(WithFaults(pa, Fault{Seed: 1, ReorderProb: 1}), ARQConfig{MTU: helloMTU}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 16
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, driveRecv(t, clk, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
}

// TestARQSurvivesHeavyFaults is the headline exactly-once check: 20% loss,
// 20% duplication, 20% reordering in both directions (data and SACKs), and
// every frame still arrives exactly once, in order.
func TestARQSurvivesHeavyFaults(t *testing.T) {
	leaktest.Check(t)
	const n = 400
	fault := Fault{LossProb: 0.2, DupProb: 0.2, ReorderProb: 0.2}
	pa, pb := PacketPipe()
	clk := newFakeClock()
	fault.Seed = 11
	a := NewARQ(WithFaults(pa, fault), ARQConfig{RTO: 0.02, MTU: helloMTU}, clk)
	fault.Seed = 22
	b := NewARQ(WithFaults(pb, fault), ARQConfig{RTO: 0.02, MTU: helloMTU}, clk)
	defer a.Close()
	defer b.Close()

	done := make(chan int, 1)
	go func() {
		for i := 0; i < n; i++ {
			f, err := b.Recv()
			if err != nil || f.Type != wire.TypeHello {
				done <- i
				return
			}
			id, err := wire.HelloNode(f)
			if err != nil || int(id) != i {
				done <- i
				return
			}
		}
		done <- n
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(30 * time.Second)
	delivered := false
	for {
		// Keep driving retransmission timers even after delivery completes:
		// frames whose SACKs were all lost drain only after one more timer
		// round provokes a fresh acknowledgment.
		select {
		case got := <-done:
			if got != n {
				t.Fatalf("exactly-once order broke at frame %d", got)
			}
			delivered = true
		case <-time.After(time.Millisecond):
			clk.Advance(0.05)
		case <-deadline:
			t.Fatalf("mesh never drained under faults (delivered=%v, outstanding=%d)", delivered, a.Outstanding())
		}
		if delivered && a.Outstanding() == 0 {
			return
		}
	}
}

func TestARQSendAckReserved(t *testing.T) {
	leaktest.Check(t)
	pa, _ := PacketPipe()
	a := NewARQ(pa, ARQConfig{}, newFakeClock())
	defer a.Close()
	if err := a.Send(wire.NewAck(3)); err == nil {
		t.Fatalf("Send(TypeAck) succeeded, want error")
	}
	if err := a.Send(wire.NewSack(3, nil)); err == nil {
		t.Fatalf("Send(TypeSack) succeeded, want error")
	}
}

func TestARQClose(t *testing.T) {
	leaktest.Check(t)
	pa, pb := PacketPipe()
	clk := newFakeClock()
	a := NewARQ(pa, ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)

	if err := a.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	if got := helloID(t, mustRecv(t, b)); got != 1 {
		t.Fatalf("got id %d", got)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(wire.NewHello(2)); err != ErrClosed {
		t.Fatalf("Send after close: %v, want ErrClosed", err)
	}
	if _, err := a.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	b.Close()
}
