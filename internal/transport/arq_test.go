package transport

import (
	"sync"
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/wire"
)

// mustRecv receives one frame or fails the test after a wall deadline.
func mustRecv(t *testing.T, c Conn) *wire.Frame {
	t.Helper()
	type res struct {
		f   *wire.Frame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := c.Recv()
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Recv: %v", r.err)
		}
		return r.f
	case <-time.After(10 * time.Second):
		t.Fatalf("Recv: timed out")
		return nil
	}
}

// helloID extracts the node id from a hello frame.
func helloID(t *testing.T, f *wire.Frame) int {
	t.Helper()
	if f.Type != wire.TypeHello {
		t.Fatalf("got frame type %v, want hello", f.Type)
	}
	id, err := wire.HelloNode(f)
	if err != nil {
		t.Fatalf("HelloNode: %v", err)
	}
	return int(id)
}

func TestARQInOrderDelivery(t *testing.T) {
	pa, pb := PacketPipe()
	clk := newFakeClock()
	a := NewARQ(pa, ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	// ACKs flow back asynchronously; the window must drain without any
	// timer help because the channel is loss-free.
	waitOutstandingZero(t, a)
}

func waitOutstandingZero(t *testing.T, c *ARQConn) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:nowall-ok test watchdog deadline, not protocol time
	for c.Outstanding() != 0 {
		if time.Now().After(deadline) { //lint:nowall-ok test watchdog deadline, not protocol time
			t.Fatalf("outstanding window never drained: %d left", c.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}
}

// dropFirstPacket drops the first n data writes (ACK-sized frames pass),
// forcing recovery through retransmission.
type dropFirstPacket struct {
	Packet
	mu   sync.Mutex
	drop int
}

func (d *dropFirstPacket) WritePacket(b []byte) error {
	d.mu.Lock()
	if d.drop > 0 && len(b) > wire.HeaderBytes+wire.TrailerBytes {
		d.drop--
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	return d.Packet.WritePacket(b)
}

func TestARQRetransmitRecoversLoss(t *testing.T) {
	pa, pb := PacketPipe()
	clk := newFakeClock()
	lossy := &dropFirstPacket{Packet: pa, drop: 2}
	a := NewARQ(lossy, ARQConfig{RTO: 0.02}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	if err := a.Send(wire.NewHello(7)); err != nil {
		t.Fatal(err)
	}
	// First transmission and first retransmission both drop; the second
	// retransmission (after backoff doubles 0.02 → 0.04) gets through.
	clk.Advance(0.02)
	clk.Advance(0.04)
	if got := helloID(t, mustRecv(t, b)); got != 7 {
		t.Fatalf("got id %d, want 7", got)
	}
	waitOutstandingZero(t, a)
}

// countingPacket counts writes passing through.
type countingPacket struct {
	Packet
	mu sync.Mutex
	n  int
}

func (c *countingPacket) WritePacket(b []byte) error {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.Packet.WritePacket(b)
}

func (c *countingPacket) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func TestARQBackoffDoubles(t *testing.T) {
	// No receiver ARQ on the far side, so nothing ever ACKs and every
	// timer round retransmits the window.
	pa, _ := PacketPipe()
	clk := newFakeClock()
	cp := &countingPacket{Packet: pa}
	a := NewARQ(cp, ARQConfig{RTO: 0.1, MaxRTO: 0.4}, clk)
	defer a.Close()

	if err := a.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	if got := cp.count(); got != 1 {
		t.Fatalf("after send: %d writes, want 1", got)
	}
	clk.Advance(0.1) // RTO fires
	if got := cp.count(); got != 2 {
		t.Fatalf("after first RTO: %d writes, want 2", got)
	}
	clk.Advance(0.1) // backoff doubled to 0.2: nothing yet
	if got := cp.count(); got != 2 {
		t.Fatalf("mid-backoff: %d writes, want 2", got)
	}
	clk.Advance(0.1) // reaches 0.2 since last round
	if got := cp.count(); got != 3 {
		t.Fatalf("after second RTO: %d writes, want 3", got)
	}
	clk.Advance(0.4) // capped at MaxRTO=0.4
	if got := cp.count(); got != 4 {
		t.Fatalf("after capped RTO: %d writes, want 4", got)
	}
}

func TestARQDedup(t *testing.T) {
	pa, pb := PacketPipe()
	clk := newFakeClock()
	// Duplicate every datagram on the wire; the receiver must still
	// deliver each frame exactly once.
	a := NewARQ(WithFaults(pa, Fault{Seed: 1, DupProb: 1}), ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 32
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
	waitOutstandingZero(t, a)
	// No further frames may surface: send a sentinel and confirm it is
	// the very next delivery.
	if err := a.Send(wire.NewHello(999)); err != nil {
		t.Fatal(err)
	}
	if got := helloID(t, mustRecv(t, b)); got != 999 {
		t.Fatalf("after dedup run: got id %d, want sentinel 999", got)
	}
}

func TestARQReorder(t *testing.T) {
	pa, pb := PacketPipe()
	clk := newFakeClock()
	// Swap every pair of datagrams; delivery order must be restored by
	// the reorder buffer without any retransmission.
	a := NewARQ(WithFaults(pa, Fault{Seed: 1, ReorderProb: 1}), ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)
	defer a.Close()
	defer b.Close()

	const n = 16
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if got := helloID(t, mustRecv(t, b)); got != i {
			t.Fatalf("frame %d: got id %d", i, got)
		}
	}
}

// TestARQSurvivesHeavyFaults is the headline exactly-once check: 20% loss,
// 20% duplication, 20% reordering in both directions (data and ACKs), and
// every frame still arrives exactly once, in order.
func TestARQSurvivesHeavyFaults(t *testing.T) {
	const n = 400
	fault := Fault{LossProb: 0.2, DupProb: 0.2, ReorderProb: 0.2}
	pa, pb := PacketPipe()
	clk := newFakeClock()
	fault.Seed = 11
	a := NewARQ(WithFaults(pa, fault), ARQConfig{RTO: 0.02}, clk)
	fault.Seed = 22
	b := NewARQ(WithFaults(pb, fault), ARQConfig{RTO: 0.02}, clk)
	defer a.Close()
	defer b.Close()

	done := make(chan int, 1)
	go func() {
		for i := 0; i < n; i++ {
			f, err := b.Recv()
			if err != nil || f.Type != wire.TypeHello {
				done <- i
				return
			}
			id, err := wire.HelloNode(f)
			if err != nil || int(id) != i {
				done <- i
				return
			}
		}
		done <- n
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case got := <-done:
			if got != n {
				t.Fatalf("exactly-once order broke at frame %d", got)
			}
			waitOutstandingZero(t, a)
			return
		case <-time.After(time.Millisecond):
			clk.Advance(0.05) // drive retransmission timers
		case <-deadline:
			t.Fatalf("mesh never drained under faults")
		}
	}
}

func TestARQSendAckReserved(t *testing.T) {
	pa, _ := PacketPipe()
	a := NewARQ(pa, ARQConfig{}, newFakeClock())
	defer a.Close()
	if err := a.Send(wire.NewAck(3)); err == nil {
		t.Fatalf("Send(TypeAck) succeeded, want error")
	}
}

func TestARQClose(t *testing.T) {
	pa, pb := PacketPipe()
	clk := newFakeClock()
	a := NewARQ(pa, ARQConfig{}, clk)
	b := NewARQ(pb, ARQConfig{}, clk)

	if err := a.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	if got := helloID(t, mustRecv(t, b)); got != 1 {
		t.Fatalf("got id %d", got)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(wire.NewHello(2)); err != ErrClosed {
		t.Fatalf("Send after close: %v, want ErrClosed", err)
	}
	if _, err := a.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close: %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	b.Close()
}
