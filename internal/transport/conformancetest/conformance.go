// Package conformancetest is the executable statement of what MPDA
// assumes from its channels. The paper's protocol is specified over
// links where "LSUs are delivered reliably and in sequence" — the
// contract internal/protonet *emulates* for the simulator and every live
// transport must *earn*. Any Conn implementation that passes Run is a
// valid substrate for a live MPDA router; one that fails would break the
// protocol's per-neighbor ACK counting in ways the simulator can never
// reproduce.
//
// The suite checks, per connected pair:
//
//   - in-order delivery of long one-way bursts,
//   - exactly-once delivery (no duplicates surfacing, nothing skipped),
//   - bidirectional independence (full-duplex streams do not interfere),
//   - payload integrity for maximum-entry LSU frames,
//   - sending from within receive processing (protonet's unbounded-queue
//     property, which MPDA's ACK-triggered sends rely on),
//   - a high bandwidth-delay-product burst that forces a deep in-flight
//     window before the receiver drains,
//   - an acknowledgment-heavy burst/pause pattern that, over duplicating
//     channels, exercises the duplicate-SACK regime,
//   - local close unblocking pending Recvs and failing later Sends.
package conformancetest

import (
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/leaktest"
	"minroute/internal/lsu"
	"minroute/internal/transport"
	"minroute/internal/wire"
)

// Factory builds one connected transport pair and a cleanup that
// releases everything the pair holds (sockets, goroutines). Each subtest
// calls it afresh.
type Factory func(t *testing.T) (a, b transport.Conn, cleanup func())

// Run executes the full conformance suite against pairs built by f. Every
// subtest is leak-checked: a transport whose cleanup leaves reader/writer
// goroutines or retransmit timers running fails the suite even if its
// delivery semantics pass.
func Run(t *testing.T, f Factory) {
	check := func(name string, fn func(*testing.T, Factory)) {
		t.Run(name, func(t *testing.T) {
			leaktest.Check(t)
			fn(t, f)
		})
	}
	check("InOrder", inOrder)
	check("ExactlyOnceLSU", exactlyOnceLSU)
	check("Bidirectional", bidirectional)
	check("PayloadIntegrity", payloadIntegrity)
	check("SendWithinRecv", sendWithinRecv)
	check("HighBDP", highBDP)
	check("DupSackStress", dupSackStress)
	check("CloseSemantics", closeSemantics)
}

// recvHello reads one frame and requires it to be a hello with an id.
func recvHello(t *testing.T, c transport.Conn) int {
	t.Helper()
	fr, err := c.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if fr.Type != wire.TypeHello {
		t.Fatalf("got frame type %v, want hello", fr.Type)
	}
	id, err := wire.HelloNode(fr)
	if err != nil {
		t.Fatalf("HelloNode: %v", err)
	}
	return int(id)
}

// inOrder sends a long one-way burst and requires arrival in sequence.
func inOrder(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	const n = 200
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		if got := recvHello(t, b); got != i {
			t.Fatalf("frame %d arrived as id %d: order violated", i, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// exactlyOnceLSU streams distinct LSUs and requires each to surface
// exactly once: a duplicate shows up as a repeated From, a loss as a gap.
func exactlyOnceLSU(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	const n = 100
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			m := &lsu.Msg{From: graph.NodeID(i), Ack: i%2 == 0, Entries: []lsu.Entry{
				{Op: lsu.OpAdd, Head: graph.NodeID(i), Tail: graph.NodeID(i + 1), Cost: float64(i) + 0.5},
			}}
			fr, err := wire.NewLSU(m)
			if err == nil {
				err = a.Send(fr)
			}
			if err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		fr, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		m, err := wire.LSUMsg(fr)
		if err != nil {
			t.Fatalf("LSUMsg %d: %v", i, err)
		}
		if int(m.From) != i {
			t.Fatalf("LSU %d surfaced with From=%d: duplicate or loss leaked through", i, m.From)
		}
		//lint:floateq-ok wire round-trip must preserve the exact bits
		if len(m.Entries) != 1 || int(m.Entries[0].Head) != i || m.Entries[0].Cost != float64(i)+0.5 {
			t.Fatalf("LSU %d payload mangled: %+v", i, m.Entries)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// bidirectional runs independent full-duplex streams.
func bidirectional(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	const n = 100
	run := func(tx, rx transport.Conn, errc chan<- error) {
		sendErr := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if err := tx.Send(wire.NewHello(graph.NodeID(i))); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- nil
		}()
		for i := 0; i < n; i++ {
			fr, err := rx.Recv()
			if err != nil {
				errc <- err
				return
			}
			id, err := wire.HelloNode(fr)
			if err != nil {
				errc <- err
				return
			}
			if int(id) != i {
				errc <- errOrder{want: i, got: int(id)}
				return
			}
		}
		errc <- <-sendErr
	}
	e1 := make(chan error, 1)
	e2 := make(chan error, 1)
	go run(a, b, e1)
	go run(b, a, e2)
	if err := <-e1; err != nil {
		t.Fatalf("a→b stream: %v", err)
	}
	if err := <-e2; err != nil {
		t.Fatalf("b→a stream: %v", err)
	}
}

type errOrder struct{ want, got int }

func (e errOrder) Error() string {
	return "order violated: want " + itoa(e.want) + ", got " + itoa(e.got)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// payloadIntegrity pushes a full-table-sized LSU through and compares the
// marshalled bytes end to end.
func payloadIntegrity(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	m := &lsu.Msg{From: 3, Ack: true}
	for i := 0; i < 512; i++ {
		m.Entries = append(m.Entries, lsu.Entry{
			Op: lsu.OpAdd, Head: graph.NodeID(i % 40), Tail: graph.NodeID((i + 1) % 40),
			Cost: 1.0 / float64(i+1),
		})
	}
	want, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	fr, err := wire.NewLSU(m)
	if err != nil {
		t.Fatalf("NewLSU: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- a.Send(fr) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if string(got.Payload) != string(want) {
		t.Fatalf("LSU payload corrupted in transit (%d bytes vs %d)", len(got.Payload), len(want))
	}
}

// sendWithinRecv has b echo every frame back from its receive loop while
// a has already queued the whole burst — the pattern MPDA uses when an
// incoming LSU triggers an outgoing ACK. No transport may deadlock here.
func sendWithinRecv(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	const n = 200
	go func() {
		for {
			fr, err := b.Recv()
			if err != nil {
				return
			}
			if err := b.Send(fr); err != nil {
				return
			}
		}
	}()
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		if got := recvHello(t, a); got != i {
			t.Fatalf("echo %d arrived as id %d", i, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// highBDP is the high bandwidth-delay-product scenario: a large burst is
// queued while the receiver deliberately sits idle, so a windowed
// transport must park a deep in-flight window (and, under injected loss
// and reordering, repair holes all across it) before delivery resumes.
// Every frame must still surface in order, exactly once.
func highBDP(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	const n = 2000
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(wire.NewHello(graph.NodeID(i))); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	// Let the sender run far ahead: everything it can put in flight is in
	// flight (window-limited transports are now blocked in Send).
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < n; i++ {
		if got := recvHello(t, b); got != i {
			t.Fatalf("frame %d arrived as id %d under a deep window", i, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// dupSackStress drives many small bursts separated by pauses. The pauses
// let the acknowledgment path fully drain between bursts, so transports
// whose channel duplicates or reorders datagrams (the faulted UDP
// factories) see runs of redundant acknowledgments for an unmoving window
// — the duplicate-SACK regime, where a spurious fast retransmit must
// surface as nothing worse than a discarded duplicate.
func dupSackStress(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	const rounds, burst = 40, 25
	errc := make(chan error, 1)
	go func() {
		for r := 0; r < rounds; r++ {
			for i := 0; i < burst; i++ {
				if err := a.Send(wire.NewHello(graph.NodeID(r*burst + i))); err != nil {
					errc <- err
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
		errc <- nil
	}()
	for i := 0; i < rounds*burst; i++ {
		if got := recvHello(t, b); got != i {
			t.Fatalf("frame %d arrived as id %d across ack-drained bursts", i, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

// closeSemantics: closing the local side unblocks its pending Recv and
// fails its later Sends.
func closeSemantics(t *testing.T, f Factory) {
	a, b, cleanup := f(t)
	defer cleanup()
	_ = a
	recvErr := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		recvErr <- err
	}()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-recvErr; err == nil {
		t.Fatalf("Recv returned nil error after local Close")
	}
	if err := b.Send(wire.NewHeartbeat()); err == nil {
		t.Fatalf("Send succeeded after Close")
	}
}
