package transport

import (
	"fmt"
	"sync"

	"minroute/internal/wire"
)

// ARQConfig tunes the retransmission layer. The zero value selects the
// defaults.
type ARQConfig struct {
	// RTO is the initial retransmission timeout in seconds (default
	// 0.02). Each unanswered retransmission round doubles it.
	RTO float64
	// MaxRTO caps the exponential backoff (default 1.0).
	MaxRTO float64
	// ReorderCap bounds the receiver's out-of-order buffer in frames
	// (default 4096); datagrams beyond it drop and are recovered by
	// retransmission.
	ReorderCap int
}

func (c ARQConfig) withDefaults() ARQConfig {
	if c.RTO <= 0 {
		c.RTO = 0.02
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 1.0
	}
	if c.ReorderCap <= 0 {
		c.ReorderCap = 4096
	}
	return c
}

// sentFrame is one transmission awaiting acknowledgment.
type sentFrame struct {
	seq uint32
	buf []byte
}

// ARQConn rebuilds the reliable, in-order, exactly-once contract on top of
// an unreliable datagram channel — the live counterpart of the ARQ model
// internal/protonet emulates beneath the simulator ("received correctly
// and in the proper sequence" is what this layer restores, not what the
// raw channel provides).
//
// Sender: every data frame gets the next sequence number and stays in the
// unacked window until the peer's cumulative ACK covers it; a timer
// retransmits the whole window with exponential backoff. Receiver:
// in-order frames are delivered and cumulatively acknowledged; duplicates
// (seq ≤ last delivered) are re-ACKed and discarded before the
// application ever sees them; out-of-order frames wait in a bounded
// reorder buffer. A duplicate therefore consumes channel attempts but
// never surfaces as a protocol event — exactly the property MPDA's ACK
// bookkeeping needs.
type ARQConn struct {
	p     Packet
	clk   Clock
	cfg   ARQConfig
	recvQ *queue

	mu       sync.Mutex
	closed   bool
	nextSeq  uint32
	unacked  []sentFrame
	rto      float64
	timer    Timer
	timerGen uint64

	// Receiver state, owned exclusively by the readLoop goroutine.
	lastDelivered uint32
	reorder       map[uint32]*wire.Frame
}

// NewARQ layers the retransmission protocol over p using clk for timers.
// It takes ownership of p.
func NewARQ(p Packet, cfg ARQConfig, clk Clock) *ARQConn {
	c := &ARQConn{
		p:       p,
		clk:     clk,
		cfg:     cfg.withDefaults(),
		recvQ:   newQueue(),
		nextSeq: 1,
		reorder: make(map[uint32]*wire.Frame),
	}
	c.rto = c.cfg.RTO
	go c.readLoop()
	return c
}

// DialUDP builds the production UDP transport: bind local, aim at remote,
// ARQ on top. Both addresses must be concrete because UDP has no
// connection handshake to discover the peer.
func DialUDP(local, remote string, cfg ARQConfig, clk Clock) (Conn, error) {
	p, err := BindUDP(local)
	if err != nil {
		return nil, err
	}
	if err := p.Connect(remote); err != nil {
		p.Close()
		return nil, err
	}
	return NewARQ(p, cfg, clk), nil
}

// seqLE is wraparound-safe serial comparison: a ≤ b on the sequence circle.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// Send assigns the next sequence number, transmits, and arms the
// retransmission timer. The frame is copied; the caller keeps ownership
// of f.
func (c *ARQConn) Send(f *wire.Frame) error {
	if f.Type == wire.TypeAck {
		return fmt.Errorf("transport: TypeAck is reserved for the ARQ layer")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	out := cloneFrame(f)
	out.Seq = c.nextSeq
	buf, err := out.Encode()
	if err != nil {
		return err
	}
	if len(buf) > MaxDatagram {
		return fmt.Errorf("transport: frame of %d bytes exceeds datagram limit %d", len(buf), MaxDatagram)
	}
	c.nextSeq++
	c.unacked = append(c.unacked, sentFrame{seq: out.Seq, buf: buf})
	if len(c.unacked) == 1 {
		c.rto = c.cfg.RTO
		c.armLocked()
	}
	return c.p.WritePacket(buf)
}

// armLocked schedules the next retransmission round; the generation
// counter invalidates stale timers.
func (c *ARQConn) armLocked() {
	c.timerGen++
	gen := c.timerGen
	c.timer = c.clk.AfterFunc(c.rto, func() { c.onTimer(gen) })
}

// onTimer retransmits the whole unacked window and backs off.
func (c *ARQConn) onTimer(gen uint64) {
	c.mu.Lock()
	if c.closed || gen != c.timerGen || len(c.unacked) == 0 {
		c.mu.Unlock()
		return
	}
	bufs := make([][]byte, len(c.unacked))
	for i := range c.unacked {
		bufs[i] = c.unacked[i].buf
	}
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	c.armLocked()
	c.mu.Unlock()
	for _, b := range bufs {
		if err := c.p.WritePacket(b); err != nil {
			return
		}
	}
}

// handleAck drops every unacked frame the cumulative ack covers.
func (c *ARQConn) handleAck(cum uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	progressed := false
	for len(c.unacked) > 0 && seqLE(c.unacked[0].seq, cum) {
		c.unacked[0].buf = nil
		c.unacked = c.unacked[1:]
		progressed = true
	}
	if !progressed {
		return
	}
	if c.timer != nil {
		c.timer.Stop()
	}
	c.rto = c.cfg.RTO
	if len(c.unacked) > 0 {
		c.armLocked()
	} else {
		c.timerGen++ // invalidate any in-flight timer
	}
}

// sendAck transmits a cumulative acknowledgment (best effort; losses are
// absorbed by retransmission).
func (c *ARQConn) sendAck(cum uint32) {
	buf, err := wire.NewAck(cum).Encode()
	if err != nil {
		return
	}
	_ = c.p.WritePacket(buf)
}

// readLoop decodes datagrams and runs the receiver state machine.
func (c *ARQConn) readLoop() {
	buf := make([]byte, MaxDatagram)
	for {
		n, err := c.p.ReadPacket(buf)
		if err != nil {
			c.teardown()
			return
		}
		f, err := wire.Decode(buf[:n])
		if err != nil {
			continue // corrupt datagram: drop; retransmission recovers
		}
		if f.Type == wire.TypeAck {
			c.handleAck(f.Seq)
			continue
		}
		c.onData(cloneFrame(f))
	}
}

// onData applies one received data frame to the receiver state.
func (c *ARQConn) onData(f *wire.Frame) {
	switch {
	case seqLE(f.Seq, c.lastDelivered):
		// Duplicate: the ARQ layer recognizes the repeated sequence number
		// and discards it; the application never sees the copy. Re-ACK so
		// the sender stops retransmitting.
		c.sendAck(c.lastDelivered)
	case f.Seq == c.lastDelivered+1:
		c.recvQ.push(f)
		c.lastDelivered++
		for {
			next, ok := c.reorder[c.lastDelivered+1]
			if !ok {
				break
			}
			delete(c.reorder, c.lastDelivered+1)
			c.recvQ.push(next)
			c.lastDelivered++
		}
		c.sendAck(c.lastDelivered)
	default:
		// Future frame: park it if the buffer has room; either way the
		// cumulative ACK tells the sender where the gap starts.
		if len(c.reorder) < c.cfg.ReorderCap {
			c.reorder[f.Seq] = f
		}
		c.sendAck(c.lastDelivered)
	}
}

// teardown closes the receive side after the packet channel dies.
func (c *ARQConn) teardown() {
	c.mu.Lock()
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timerGen++
	c.mu.Unlock()
	c.recvQ.close()
}

// Recv blocks for the next in-order frame.
func (c *ARQConn) Recv() (*wire.Frame, error) { return c.recvQ.pop() }

// Outstanding reports the number of frames awaiting acknowledgment —
// zero means every Send so far has provably reached the peer.
func (c *ARQConn) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.unacked)
}

// Close tears the connection down; blocked Recvs drain and then fail.
func (c *ARQConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timerGen++
	c.mu.Unlock()
	err := c.p.Close()
	c.recvQ.close()
	return err
}
