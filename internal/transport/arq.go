package transport

import (
	"fmt"
	"math"
	"sync"

	"minroute/internal/wire"
)

// ARQConfig tunes the selective-repeat retransmission layer. The zero
// value selects the defaults.
type ARQConfig struct {
	// RTO seeds the retransmission timeout in seconds until the first RTT
	// sample trains the estimator (default 0.02).
	RTO float64
	// MinRTO floors the estimator-driven timeout (default 0.002) so a
	// near-zero RTT sample cannot trigger a retransmission storm.
	MinRTO float64
	// MaxRTO caps each frame's exponential backoff (default 1.0).
	MaxRTO float64
	// Window bounds the send window — frames sent but not cumulatively
	// acknowledged (default 1024). Send blocks while the window is full,
	// which is the layer's flow control.
	Window int
	// MTU bounds one coalesced datagram in bytes (default 8 KiB, capped at
	// MaxDatagram). Small frames queued together ride one datagram — one
	// syscall — up to this size.
	MTU int
	// ReorderCap bounds the receiver's out-of-order buffer in frames
	// (default 4096); datagrams beyond it drop and are recovered by
	// retransmission.
	ReorderCap int
	// Stats observes retransmission behavior; nil disables observation at
	// the cost of one branch per event.
	Stats *ARQStats
}

// DefaultMTU is the default coalescing bound: large enough to amortize the
// per-datagram syscall across dozens of LSU-sized frames, small enough
// that a burst of datagrams fits comfortably in default socket buffers.
const DefaultMTU = 8 << 10

func (c ARQConfig) withDefaults() ARQConfig {
	if c.RTO <= 0 {
		c.RTO = 0.02
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 0.002
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 1.0
	}
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.MTU <= 0 {
		c.MTU = DefaultMTU
	}
	if c.MTU > MaxDatagram {
		c.MTU = MaxDatagram
	}
	if c.ReorderCap <= 0 {
		c.ReorderCap = 4096
	}
	return c
}

// ARQStats observes the retransmission machinery — the hook the live
// runtime uses to surface ARQ behavior as telemetry. Every field is
// optional; callbacks run with the connection's lock held, so they must be
// fast and must not call back into the connection.
type ARQStats struct {
	// Retransmit fires once per retransmitted frame; fast reports whether
	// duplicate SACKs (fast retransmit) or RTO expiry triggered it.
	Retransmit func(seq uint32, rto float64, fast bool)
	// RTOUpdate fires when an RTT sample moves the estimator.
	RTOUpdate func(srtt, rttvar, rto float64)
	// Window reports send-window occupancy after it changes.
	Window func(occupied, limit int)
}

// sendSlot is one window entry: an encoded frame awaiting cumulative
// acknowledgment, with its own retransmission clock.
type sendSlot struct {
	seq      uint32
	buf      []byte // encoded frame bytes; storage reused across window wraps
	sentAt   float64
	deadline float64
	rto      float64
	pending  bool // queued for (re)transmission by the write loop
	retx     bool // retransmitted at least once — Karn's rule bars RTT sampling
	sacked   bool // selectively acknowledged — no further retransmission
}

// ARQConn rebuilds the reliable, in-order, exactly-once contract on top of
// an unreliable datagram channel — the live counterpart of the ARQ model
// internal/protonet emulates beneath the simulator ("received correctly
// and in the proper sequence" is what this layer restores, not what the
// raw channel provides).
//
// The protocol is selective repeat. Sender: every data frame takes the
// next sequence number and a slot in a sliding window (Send blocks when
// the window is full); a write loop coalesces queued frames into MTU-sized
// datagrams — one syscall drains the whole queue; each frame carries its
// own retransmit deadline from an SRTT/RTTVAR estimator (RFC 6298 shape,
// Karn's rule excluding retransmitted frames from sampling), doubling per
// expiry up to MaxRTO; three duplicate SACKs fast-retransmit the first
// unacknowledged frame without waiting for the timer. Receiver: in-order
// frames are delivered; out-of-order frames wait in a bounded reorder
// buffer; every data-bearing datagram is answered with one SACK frame —
// cumulative ack plus a bitmap of out-of-order receptions — so the sender
// resends only what is actually missing. Duplicates (seq ≤ last delivered)
// are re-SACKed and discarded before the application ever sees them — a
// duplicate consumes channel attempts but never surfaces as a protocol
// event, exactly the property MPDA's ACK bookkeeping needs.
type ARQConn struct {
	p     Packet
	clk   Clock
	cfg   ARQConfig
	recvQ *queue

	mu        sync.Mutex
	sendSpace *sync.Cond // window occupancy dropped, or closed
	work      *sync.Cond // the write loop has frames or an ack to flush
	closed    bool

	// Sender state (under mu).
	nextSeq  uint32
	win      []sendSlot // ring: win[(winStart+i)%len] for i < winLen
	winStart int
	winLen   int
	pendingN int // slots with pending=true
	srtt     float64
	rttvar   float64
	rto      float64
	hasSRTT  bool
	timer    Timer
	timerGen uint64
	lastCum  uint32 // highest cumulative ack applied
	dupCum   int    // consecutive no-progress SACKs at lastCum
	fastDone bool   // fast retransmit already spent at lastCum

	// Outbound-ack state (under mu; produced by the read loop, consumed by
	// the write loop).
	ackPending bool
	ackCum     uint32
	ackBitmap  []byte // reused scratch, canonical (trailing zeros trimmed)

	// Receiver state, owned exclusively by the readLoop goroutine.
	lastDelivered uint32
	reorder       map[uint32]*wire.Frame
	deliverBuf    []*wire.Frame // per-datagram delivery batch, reused
	ackDgram      []byte        // readLoop-owned scratch for inline SACK writes
}

// NewARQ layers the retransmission protocol over p using clk for timers
// and RTT measurement. It takes ownership of p.
func NewARQ(p Packet, cfg ARQConfig, clk Clock) *ARQConn {
	cfg = cfg.withDefaults()
	c := &ARQConn{
		p:       p,
		clk:     clk,
		cfg:     cfg,
		recvQ:   newQueue(),
		nextSeq: 1,
		win:     make([]sendSlot, cfg.Window),
		rto:     cfg.RTO,
		reorder: make(map[uint32]*wire.Frame),
	}
	c.sendSpace = sync.NewCond(&c.mu)
	c.work = sync.NewCond(&c.mu)
	go c.readLoop()
	go c.writeLoop()
	return c
}

// DialUDP builds the production UDP transport: bind local, aim at remote,
// ARQ on top. Both addresses must be concrete because UDP has no
// connection handshake to discover the peer.
func DialUDP(local, remote string, cfg ARQConfig, clk Clock) (Conn, error) {
	p, err := BindUDP(local)
	if err != nil {
		return nil, err
	}
	if err := p.Connect(remote); err != nil {
		p.Close()
		return nil, err
	}
	return NewARQ(p, cfg, clk), nil
}

// seqLE is wraparound-safe serial comparison: a ≤ b on the sequence circle.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// seqLT is strict wraparound-safe serial comparison.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// Send assigns the next sequence number, encodes the frame into its window
// slot, and hands it to the write loop for (coalesced) transmission. It
// blocks while the send window is full. The frame is copied; the caller
// keeps ownership of f.
func (c *ARQConn) Send(f *wire.Frame) error {
	if f.Type == wire.TypeAck || f.Type == wire.TypeSack {
		return fmt.Errorf("transport: %s frames are reserved for the ARQ layer", f.Type)
	}
	if n := f.EncodedBytes(); n > MaxDatagram {
		return fmt.Errorf("transport: frame of %d bytes exceeds max datagram %d", n, MaxDatagram)
	}
	c.mu.Lock()
	for c.winLen == len(c.win) && !c.closed {
		c.sendSpace.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	slot := &c.win[(c.winStart+c.winLen)%len(c.win)]
	g := *f
	g.Seq = c.nextSeq
	buf, err := g.AppendEncode(slot.buf[:0])
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.nextSeq++
	slot.seq = g.Seq
	slot.buf = buf
	slot.sentAt = 0
	slot.deadline = 0
	slot.rto = c.rto
	slot.pending = true
	slot.retx = false
	slot.sacked = false
	c.winLen++
	c.pendingN++
	c.statWindow()
	// Fast path: an empty window means nothing is in flight to coalesce
	// with, so write the lone frame from the caller and skip the write-loop
	// handoff — one scheduler hop fewer per datagram, which is what sparse
	// traffic (heartbeats, lone LSUs) is made of. Pipelined senders keep
	// the window occupied and take the queued path, so bulk traffic still
	// batches. The slot buffer is stable until the window advances past it,
	// which requires the peer to have acknowledged this very frame, so
	// writing it outside the lock is safe.
	if c.winLen == 1 && c.pendingN == 1 && !c.ackPending {
		out := c.claimInlineLocked(slot)
		c.mu.Unlock()
		_ = c.p.WritePacket(out)
		return nil
	}
	c.work.Signal()
	c.mu.Unlock()
	return nil
}

// claimInlineLocked stamps a lone pending slot for an inline write by the
// caller, bypassing the write loop. The returned buffer is the slot's
// encoding, stable until the window advances past the slot — which
// requires the peer to have received this very frame.
func (c *ARQConn) claimInlineLocked(slot *sendSlot) []byte {
	slot.pending = false
	c.pendingN--
	now := c.clk.Now()
	slot.sentAt = now
	slot.deadline = now + slot.rto
	c.armTimerLocked(now)
	return slot.buf
}

// writeLoop drains queued frames onto the wire, coalescing as many as fit
// into one MTU-sized datagram per syscall, with any pending SACK leading
// the datagram so acknowledgments piggyback on data.
func (c *ARQConn) writeLoop() {
	dgram := make([]byte, 0, c.cfg.MTU)
	for {
		c.mu.Lock()
		for !c.closed && !c.ackPending && c.pendingN == 0 {
			c.work.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		dgram = c.fillDatagramLocked(dgram[:0])
		c.mu.Unlock()
		if len(dgram) > 0 {
			// Best effort: a write error means the socket is dying, and the
			// read side owns teardown.
			_ = c.p.WritePacket(dgram)
		}
	}
}

// fillDatagramLocked builds one outbound datagram: the pending SACK (if
// any) followed by as many pending window slots as fit under the MTU. It
// stamps transmission times and re-arms the retransmission timer.
func (c *ARQConn) fillDatagramLocked(dgram []byte) []byte {
	if c.ackPending {
		c.ackPending = false
		sf := wire.Frame{Type: wire.TypeSack, Seq: c.ackCum}
		if len(c.ackBitmap) > 0 {
			sf.Payload = c.ackBitmap
		}
		out, err := sf.AppendEncode(dgram)
		if err == nil {
			dgram = out
		}
	}
	if c.pendingN == 0 {
		return dgram
	}
	now := c.clk.Now()
	sent := false
	for i := 0; i < c.winLen && c.pendingN > 0; i++ {
		slot := &c.win[(c.winStart+i)%len(c.win)]
		if !slot.pending {
			continue
		}
		// The MTU bounds coalescing, not frame size: a frame that alone
		// exceeds it still ships as its own (possibly oversize) datagram.
		if len(dgram) > 0 && len(dgram)+len(slot.buf) > c.cfg.MTU {
			break
		}
		dgram = append(dgram, slot.buf...)
		slot.pending = false
		slot.sentAt = now
		slot.deadline = now + slot.rto
		c.pendingN--
		sent = true
	}
	if c.pendingN > 0 {
		// More than one datagram's worth is queued: keep the loop running.
		c.work.Signal()
	}
	if sent {
		c.armTimerLocked(now)
	}
	return dgram
}

// armTimerLocked schedules the retransmission timer for the earliest
// deadline among in-flight frames; the generation counter invalidates
// stale timers.
func (c *ARQConn) armTimerLocked(now float64) {
	earliest := math.Inf(1)
	for i := 0; i < c.winLen; i++ {
		s := &c.win[(c.winStart+i)%len(c.win)]
		if s.pending || s.sacked {
			continue
		}
		if s.deadline < earliest {
			earliest = s.deadline
		}
	}
	c.timerGen++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if math.IsInf(earliest, 1) {
		return
	}
	d := earliest - now
	if d < 0 {
		d = 0
	}
	gen := c.timerGen
	c.timer = c.clk.AfterFunc(d, func() { c.onTimer(gen) })
}

// onTimer queues every overdue frame for retransmission with doubled
// per-frame backoff — only what is actually missing is resent.
func (c *ARQConn) onTimer(gen uint64) {
	c.mu.Lock()
	if c.closed || gen != c.timerGen {
		c.mu.Unlock()
		return
	}
	now := c.clk.Now()
	queued := false
	var due *sendSlot
	for i := 0; i < c.winLen; i++ {
		s := &c.win[(c.winStart+i)%len(c.win)]
		if s.pending || s.sacked || s.deadline > now+1e-12 {
			continue
		}
		s.rto *= 2
		if s.rto > c.cfg.MaxRTO {
			s.rto = c.cfg.MaxRTO
		}
		s.pending = true
		s.retx = true
		c.pendingN++
		queued = true
		due = s
		if st := c.cfg.Stats; st != nil && st.Retransmit != nil {
			st.Retransmit(s.seq, s.rto, false)
		}
	}
	if queued && c.pendingN == 1 && !c.ackPending {
		// A lone overdue frame retransmits inline from the timer goroutine —
		// the common loss-recovery case skips the write-loop handoff just
		// like Send's fast path does.
		out := c.claimInlineLocked(due)
		c.mu.Unlock()
		_ = c.p.WritePacket(out)
		return
	}
	if queued {
		c.work.Signal()
	}
	c.armTimerLocked(now)
	c.mu.Unlock()
}

// handleSack applies one acknowledgment: pop the cumulatively covered
// window prefix, mark bitmap-covered frames as selectively acknowledged,
// sample RTT per Karn's rule, and count duplicates toward fast retransmit.
func (c *ARQConn) handleSack(cum uint32, bitmap []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	now := c.clk.Now()
	progressed := false
	sample := -1.0
	for c.winLen > 0 {
		s := &c.win[c.winStart]
		if !seqLE(s.seq, cum) {
			break
		}
		// Sample only slots first acknowledged by THIS cumulative advance: a
		// slot already sacked was delivered (and sampled) when its bitmap bit
		// arrived — now-sentAt for it would fold the whole gap-recovery time
		// into the estimator and balloon the RTO.
		if !s.retx && !s.pending && !s.sacked && sample < 0 {
			sample = now - s.sentAt
		}
		if s.pending {
			s.pending = false
			c.pendingN--
		}
		c.winStart = (c.winStart + 1) % len(c.win)
		c.winLen--
		progressed = true
	}
	for i := range bitmap {
		if bitmap[i] == 0 {
			continue
		}
		for bit := 0; bit < 8; bit++ {
			if bitmap[i]&(1<<uint(bit)) == 0 {
				continue
			}
			s := c.slotForLocked(cum + 1 + uint32(i*8+bit))
			if s == nil || s.sacked {
				continue
			}
			s.sacked = true
			if s.pending {
				s.pending = false
				c.pendingN--
			}
			if !s.retx && sample < 0 {
				sample = now - s.sentAt
			}
			progressed = true
		}
	}
	// Fast retransmit counts SACKs whose cumulative ack is stuck — new
	// bitmap bits still count as duplicates (they prove later frames are
	// landing while the front of the window is not), exactly the TCP-SACK
	// rule. Only cumulative progress resets the count.
	if seqLT(c.lastCum, cum) {
		c.lastCum = cum
		c.dupCum = 0
		c.fastDone = false
	} else if cum == c.lastCum && c.winLen > 0 {
		c.dupCum++
		if c.dupCum >= 3 && !c.fastDone {
			c.fastRetransmitLocked()
			c.fastDone = true
		}
	}
	if progressed {
		if sample >= 0 {
			c.updateRTOLocked(sample)
		}
		c.statWindow()
		c.sendSpace.Broadcast()
		c.armTimerLocked(now)
	}
}

// fastRetransmitLocked queues the first unacknowledged in-flight frame —
// three duplicate SACKs mean later frames arrived while it did not, so
// waiting out its RTO would only add latency.
func (c *ARQConn) fastRetransmitLocked() {
	for i := 0; i < c.winLen; i++ {
		s := &c.win[(c.winStart+i)%len(c.win)]
		if s.sacked || s.pending {
			return // already queued or provably delivered: nothing to hurry
		}
		s.pending = true
		s.retx = true
		c.pendingN++
		if st := c.cfg.Stats; st != nil && st.Retransmit != nil {
			st.Retransmit(s.seq, s.rto, true)
		}
		c.work.Signal()
		return
	}
}

// slotForLocked resolves a sequence number to its window slot, or nil when
// the sequence is outside the current window.
func (c *ARQConn) slotForLocked(seq uint32) *sendSlot {
	if c.winLen == 0 {
		return nil
	}
	off := int(int32(seq - c.win[c.winStart].seq))
	if off < 0 || off >= c.winLen {
		return nil
	}
	return &c.win[(c.winStart+off)%len(c.win)]
}

// updateRTOLocked folds one RTT sample into the SRTT/RTTVAR estimator
// (RFC 6298 gains) and clamps the resulting RTO to [MinRTO, MaxRTO].
func (c *ARQConn) updateRTOLocked(sample float64) {
	if sample < 0 {
		sample = 0
	}
	if !c.hasSRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasSRTT = true
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = 0.75*c.rttvar + 0.25*d
		c.srtt = 0.875*c.srtt + 0.125*sample
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	c.rto = rto
	if st := c.cfg.Stats; st != nil && st.RTOUpdate != nil {
		st.RTOUpdate(c.srtt, c.rttvar, c.rto)
	}
}

// statWindow reports send-window occupancy to the observer (under mu).
func (c *ARQConn) statWindow() {
	if st := c.cfg.Stats; st != nil && st.Window != nil {
		st.Window(c.winLen, len(c.win))
	}
}

// readLoop decodes datagrams — each possibly carrying several coalesced
// frames — and runs the receiver state machine. Delivered frames alias a
// per-datagram copy, so the whole batch costs one buffer allocation
// instead of one per frame.
func (c *ARQConn) readLoop() {
	buf := make([]byte, MaxDatagram)
	for {
		n, err := c.p.ReadPacket(buf)
		if err != nil {
			c.teardown()
			return
		}
		// One stable copy per datagram: decoded payloads alias it, and any
		// frame that outlives this iteration (delivered or parked in the
		// reorder buffer) keeps it reachable.
		data := append(make([]byte, 0, n), buf[:n]...)
		frames := make([]wire.Frame, 0, 8)
		for len(data) > 0 {
			var f wire.Frame
			used, err := wire.DecodeSome(&f, data)
			if err != nil {
				break // corrupt tail: drop; retransmission recovers
			}
			data = data[used:]
			switch f.Type {
			case wire.TypeAck:
				c.handleSack(f.Seq, nil)
			case wire.TypeSack:
				c.handleSack(f.Seq, f.Payload)
			default:
				frames = append(frames, f)
			}
		}
		if len(frames) == 0 {
			continue
		}
		c.deliverBuf = c.deliverBuf[:0]
		for i := range frames {
			c.onData(&frames[i])
		}
		if len(c.deliverBuf) > 0 {
			c.recvQ.pushAll(c.deliverBuf)
		}
		// Every data-bearing datagram — including pure duplicates — is
		// answered, so a lost SACK is repaired by the retransmission it
		// provokes.
		c.scheduleAck()
		c.flushAck()
	}
}

// flushAck writes the pending SACK inline from the readLoop when no data
// frames are queued — skipping the write-loop handoff keeps the ack round
// trip at two scheduler hops, which is what lets sparse traffic (heartbeats)
// drain the peer's window promptly. When data is pending, the write loop is
// woken instead so the SACK piggybacks on the next coalesced datagram.
func (c *ARQConn) flushAck() {
	c.mu.Lock()
	if c.closed || !c.ackPending {
		c.mu.Unlock()
		return
	}
	if c.pendingN > 0 {
		c.work.Signal()
		c.mu.Unlock()
		return
	}
	c.ackPending = false
	sf := wire.Frame{Type: wire.TypeSack, Seq: c.ackCum}
	if len(c.ackBitmap) > 0 {
		sf.Payload = c.ackBitmap
	}
	out, err := sf.AppendEncode(c.ackDgram[:0])
	if err != nil {
		c.mu.Unlock()
		return
	}
	c.ackDgram = out
	c.mu.Unlock()
	_ = c.p.WritePacket(out)
}

// onData applies one received data frame to the receiver state. Frames
// passed in must have stable storage (they are retained by pointer).
func (c *ARQConn) onData(f *wire.Frame) {
	switch {
	case seqLE(f.Seq, c.lastDelivered):
		// Duplicate: the ARQ layer recognizes the repeated sequence number
		// and discards it; the application never sees the copy. The SACK we
		// send back stops the retransmissions.
	case f.Seq == c.lastDelivered+1:
		c.deliverBuf = append(c.deliverBuf, f)
		c.lastDelivered++
		for {
			next, ok := c.reorder[c.lastDelivered+1]
			if !ok {
				break
			}
			delete(c.reorder, c.lastDelivered+1)
			c.deliverBuf = append(c.deliverBuf, next)
			c.lastDelivered++
		}
	default:
		// Future frame: park it if it is within the reorder horizon and the
		// buffer has room; either way the SACK tells the sender where the
		// gap starts and what already arrived.
		dist := int(int32(f.Seq - (c.lastDelivered + 1)))
		if dist < c.cfg.ReorderCap && len(c.reorder) < c.cfg.ReorderCap {
			if _, dup := c.reorder[f.Seq]; !dup {
				c.reorder[f.Seq] = f
			}
		}
	}
}

// scheduleAck snapshots the receiver state into the outbound-ack scratch —
// cumulative ack plus the out-of-order bitmap. The readLoop follows up with
// flushAck, which either writes it inline or wakes the write loop to
// piggyback it; coalescing is free because only the latest snapshot is ever
// sent.
func (c *ARQConn) scheduleAck() {
	c.mu.Lock()
	c.ackPending = true
	c.ackCum = c.lastDelivered
	bm := c.ackBitmap[:0]
	maxBits := 8 * wire.MaxSackBytes
	if c.cfg.ReorderCap < maxBits {
		maxBits = c.cfg.ReorderCap
	}
	//lint:maporder-ok bitmap union is commutative; iteration order cannot show
	for seq := range c.reorder {
		off := int(int32(seq - (c.ackCum + 1)))
		if off < 0 || off >= maxBits {
			continue
		}
		for len(bm) <= off/8 {
			bm = append(bm, 0)
		}
		bm[off/8] |= 1 << (uint(off) % 8)
	}
	for len(bm) > 0 && bm[len(bm)-1] == 0 {
		bm = bm[:len(bm)-1]
	}
	c.ackBitmap = bm
	c.mu.Unlock()
}

// teardown closes the receive side after the packet channel dies.
func (c *ARQConn) teardown() {
	c.mu.Lock()
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timerGen++
	c.sendSpace.Broadcast()
	c.work.Broadcast()
	c.mu.Unlock()
	c.recvQ.close()
}

// Recv blocks for the next in-order frame.
func (c *ARQConn) Recv() (*wire.Frame, error) { return c.recvQ.pop() }

// Outstanding reports the number of frames awaiting cumulative
// acknowledgment — zero means every Send so far has provably reached the
// peer.
func (c *ARQConn) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.winLen
}

// RTO returns the current estimator-driven retransmission timeout.
func (c *ARQConn) RTO() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rto
}

// Close tears the connection down; blocked Recvs drain and then fail.
// Frames queued but never yet transmitted are flushed once, best effort —
// the node runtime's BYE rides in that flush — but nothing is awaited:
// reliability ends at Close.
func (c *ARQConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timerGen++
	var flush [][]byte
	var dgram []byte
	for i := 0; i < c.winLen; i++ {
		slot := &c.win[(c.winStart+i)%len(c.win)]
		if !slot.pending || slot.retx {
			continue
		}
		if len(dgram) > 0 && len(dgram)+len(slot.buf) > c.cfg.MTU {
			flush = append(flush, dgram)
			dgram = nil
		}
		dgram = append(dgram, slot.buf...)
		slot.pending = false
	}
	if len(dgram) > 0 {
		flush = append(flush, dgram)
	}
	c.pendingN = 0
	c.sendSpace.Broadcast()
	c.work.Broadcast()
	c.mu.Unlock()
	for _, d := range flush {
		_ = c.p.WritePacket(d)
	}
	err := c.p.Close()
	c.recvQ.close()
	return err
}
