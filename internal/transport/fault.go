package transport

import (
	"sync"

	"minroute/internal/rng"
)

// Fault configures seeded perturbation of a Packet channel. Probabilities
// are per-datagram and applied on the write side, so ARQ retransmissions
// run the same gauntlet as first transmissions. The zero value injects
// nothing.
type Fault struct {
	// Seed drives the perturbation PRNG; equal seeds give equal fault
	// sequences for the same write sequence.
	Seed uint64
	// LossProb drops the datagram.
	LossProb float64
	// DupProb sends the datagram twice.
	DupProb float64
	// ReorderProb holds the datagram back and releases it after the next
	// one — a one-slot reordering, the classic UDP late-arrival.
	ReorderProb float64
}

// Active reports whether any perturbation is configured.
func (f Fault) Active() bool { return f.LossProb > 0 || f.DupProb > 0 || f.ReorderProb > 0 }

// faultPacket wraps a Packet with seeded write-side faults.
type faultPacket struct {
	inner Packet
	cfg   Fault

	mu   sync.Mutex
	r    *rng.Source
	held []byte
}

// WithFaults wraps p with the seeded fault injector; a zero Fault returns
// p unchanged.
func WithFaults(p Packet, f Fault) Packet {
	if !f.Active() {
		return p
	}
	return &faultPacket{inner: p, cfg: f, r: rng.New(f.Seed)}
}

// WritePacket applies loss, then reorder, then duplication.
func (fp *faultPacket) WritePacket(b []byte) error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.cfg.LossProb > 0 && fp.r.Float64() < fp.cfg.LossProb {
		return nil // lost on the wire
	}
	if fp.held != nil {
		// Release the held datagram after this one: the pair arrives
		// swapped.
		cur := append([]byte(nil), b...)
		held := fp.held
		fp.held = nil
		if err := fp.inner.WritePacket(cur); err != nil {
			return err
		}
		return fp.inner.WritePacket(held)
	}
	if fp.cfg.ReorderProb > 0 && fp.r.Float64() < fp.cfg.ReorderProb {
		fp.held = append([]byte(nil), b...)
		return nil
	}
	if err := fp.inner.WritePacket(b); err != nil {
		return err
	}
	if fp.cfg.DupProb > 0 && fp.r.Float64() < fp.cfg.DupProb {
		return fp.inner.WritePacket(b)
	}
	return nil
}

// ReadPacket passes through.
func (fp *faultPacket) ReadPacket(b []byte) (int, error) { return fp.inner.ReadPacket(b) }

// Close releases any held datagram (it counts as lost) and closes the
// inner channel.
func (fp *faultPacket) Close() error {
	fp.mu.Lock()
	fp.held = nil
	fp.mu.Unlock()
	return fp.inner.Close()
}
