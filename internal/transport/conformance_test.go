package transport_test

import (
	"minroute/internal/leaktest"
	"testing"
	"time"

	"minroute/internal/transport"
	"minroute/internal/transport/conformancetest"
)

// wallTimers is a Clock backed by real time for socket-level tests: the
// ARQ's RTT estimator samples Now, so it must be a real monotonic reading
// here, not a constant.
type wallTimers struct{ epoch time.Time }

func newWallTimers() wallTimers {
	return wallTimers{epoch: time.Now()} //lint:nowall-ok test clock for real-socket conformance runs
}

func (w wallTimers) Now() float64 {
	return time.Since(w.epoch).Seconds() //lint:nowall-ok test clock for real-socket conformance runs
}

func (wallTimers) AfterFunc(d float64, fn func()) transport.Timer {
	return time.AfterFunc(time.Duration(d*float64(time.Second)), fn)
}

// TestConformanceInmem runs the suite against the synchronous in-memory
// pipe — the reference transport.
func TestConformanceInmem(t *testing.T) {
	leaktest.Check(t)
	conformancetest.Run(t, func(t *testing.T) (a, b transport.Conn, cleanup func()) {
		a, b = transport.Pipe()
		return a, b, func() { a.Close(); b.Close() }
	})
}

// TestConformanceTCP runs the suite over real loopback TCP sockets.
func TestConformanceTCP(t *testing.T) {
	leaktest.Check(t)
	conformancetest.Run(t, func(t *testing.T) (a, b transport.Conn, cleanup func()) {
		l, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenTCP: %v", err)
		}
		type acc struct {
			c   transport.Conn
			err error
		}
		ch := make(chan acc, 1)
		go func() {
			c, err := l.Accept()
			ch <- acc{c, err}
		}()
		a, err = transport.DialTCP(l.Addr())
		if err != nil {
			t.Fatalf("DialTCP: %v", err)
		}
		got := <-ch
		if got.err != nil {
			t.Fatalf("Accept: %v", got.err)
		}
		b = got.c
		return a, b, func() { a.Close(); b.Close(); l.Close() }
	})
}

// udpPair binds two loopback UDP sockets aimed at each other, optionally
// wraps both write paths with the seeded fault injector, and layers the
// ARQ on top.
func udpPair(t *testing.T, fault transport.Fault) (a, b transport.Conn, cleanup func()) {
	t.Helper()
	pa, err := transport.BindUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("BindUDP: %v", err)
	}
	pb, err := transport.BindUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("BindUDP: %v", err)
	}
	if err := pa.Connect(pb.LocalAddr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := pb.Connect(pa.LocalAddr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Fast retransmission keeps the faulted variants quick in wall time.
	cfg := transport.ARQConfig{RTO: 0.005, MaxRTO: 0.1}
	fa, fb := fault, fault
	fa.Seed, fb.Seed = fault.Seed, fault.Seed+1
	ca := transport.NewARQ(transport.WithFaults(pa, fa), cfg, newWallTimers())
	cb := transport.NewARQ(transport.WithFaults(pb, fb), cfg, newWallTimers())
	return ca, cb, func() { ca.Close(); cb.Close() }
}

// TestConformanceUDPARQ runs the suite over real loopback UDP sockets
// with the ARQ restoring the reliable in-order contract.
func TestConformanceUDPARQ(t *testing.T) {
	leaktest.Check(t)
	conformancetest.Run(t, func(t *testing.T) (transport.Conn, transport.Conn, func()) {
		return udpPair(t, transport.Fault{})
	})
}

// TestConformanceUDPARQFaulty is the suite under seeded 20% loss, 20%
// duplication, and 20% reordering injected on both write paths — the ARQ
// must still present an exactly-once in-order channel.
func TestConformanceUDPARQFaulty(t *testing.T) {
	leaktest.Check(t)
	conformancetest.Run(t, func(t *testing.T) (transport.Conn, transport.Conn, func()) {
		return udpPair(t, transport.Fault{Seed: 42, LossProb: 0.2, DupProb: 0.2, ReorderProb: 0.2})
	})
}
