// Package transport provides the live channels between MPDA peers: an
// abstract frame connection plus three implementations — in-memory pipes
// for deterministic tests, TCP for streams that are already reliable, and
// UDP with an ARQ layer that rebuilds reliability from datagrams.
//
// The contract every Conn must honor is exactly the assumption the paper
// makes of its link model and that internal/protonet emulates in
// simulation: frames submitted on one side are delivered on the other side
// reliably, in submission order, exactly once ("LSUs are delivered
// reliably and in sequence"). MPDA's correctness leans on this — a
// duplicated LSU would mint a spurious ACK credit and break the loop-free
// invariant, and a reordered one would tear the single-hop synchronization
// of the ACTIVE phase. The conformance suite in
// internal/transport/conformancetest states the contract as executable
// property tests; every implementation in this package must pass it,
// including UDP+ARQ under seeded loss, duplication, and reordering.
package transport

import (
	"errors"
	"sync"

	"minroute/internal/wire"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is one side of a peer-to-peer frame channel with the reliable,
// in-order, exactly-once delivery contract described in the package
// comment. Send and Recv are safe for concurrent use; Recv blocks until a
// frame arrives or the connection closes. Implementations own the frames
// they return; callers own the frames they pass to Send (Send must not
// retain them).
type Conn interface {
	Send(f *wire.Frame) error
	Recv() (*wire.Frame, error)
	Close() error
}

// Dialer opens connections to peer addresses — the piece a node runtime
// needs to reach its configured neighbors without knowing the transport.
type Dialer interface {
	Dial(addr string) (Conn, error)
}

// Timer is a pending clock callback; Stop cancels it, reporting whether it
// was still pending.
type Timer interface {
	Stop() bool
}

// Clock abstracts the timebase of the live stack. Now returns seconds
// since an arbitrary epoch; AfterFunc schedules fn after d seconds. The
// wall implementation lives in internal/node (the single sanctioned
// wall-clock boundary — see the nowall lint check); virtual
// implementations drive deterministic tests.
type Clock interface {
	Now() float64
	AfterFunc(d float64, fn func()) Timer
}

// queue is an unbounded, closable FIFO of frames — the receive buffer
// shared by the in-memory and ARQ transports. After Close, pops drain the
// remaining frames and then report ErrClosed (the TCP FIN model: data
// already sent is still delivered).
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []*wire.Frame
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends f, reporting false when the queue is closed.
func (q *queue) push(f *wire.Frame) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.frames = append(q.frames, f)
	q.cond.Signal()
	return true
}

// pushAll appends a batch of frames under one lock acquisition — the ARQ
// receive path delivers every frame decoded from a coalesced datagram in
// one call. Reports false when the queue is closed.
func (q *queue) pushAll(fs []*wire.Frame) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.frames = append(q.frames, fs...)
	q.cond.Broadcast()
	return true
}

// pop blocks for the next frame; it returns ErrClosed once the queue is
// closed and drained.
func (q *queue) pop() (*wire.Frame, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames) == 0 {
		return nil, ErrClosed
	}
	f := q.frames[0]
	q.frames[0] = nil
	q.frames = q.frames[1:]
	return f, nil
}

// close marks the queue closed and wakes all waiters.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// cloneFrame deep-copies f so queued frames never alias caller buffers.
func cloneFrame(f *wire.Frame) *wire.Frame {
	c := &wire.Frame{Type: f.Type, Seq: f.Seq}
	if len(f.Payload) > 0 {
		c.Payload = append([]byte(nil), f.Payload...)
	}
	return c
}
