package transport

import (
	"fmt"
	"net"
	"sync"

	"minroute/internal/rng"
)

// Datagram is the addressed, unreliable, fire-and-forget channel beneath
// the data plane — the deliberate opposite of the ARQ'd control channel.
// A node binds one Datagram (its data port), learns its neighbors' data
// addresses out of band (the mesh wires them; mdrnode publishes them in
// the observability manifest), and forwards each data packet to the next
// hop's address with no acknowledgment, retransmission, or ordering: the
// paper's model charges the routing layer for delay, not for reliability,
// and a lost data packet is simply lost.
//
// Unlike Packet (one point-to-point lane per link), a Datagram is one
// many-to-one socket per node: every neighbor writes to it, which is how
// a real router's interface behaves and what keeps the data plane at one
// file descriptor per node instead of one per link.
type Datagram interface {
	// WriteTo sends one datagram to addr (best effort).
	WriteTo(b []byte, addr string) error
	// ReadFrom blocks for the next datagram, copying it into b and
	// returning its length. It returns an error once the channel closes.
	ReadFrom(b []byte) (int, error)
	// LocalAddr returns this channel's address — what peers pass to
	// WriteTo to reach it.
	LocalAddr() string
	// Close releases the channel and unblocks pending reads.
	Close() error
}

// UDPDatagram is a Datagram over one bound UDP socket.
type UDPDatagram struct {
	conn *net.UDPConn

	mu    sync.Mutex
	addrs map[string]*net.UDPAddr
}

// BindUDPDatagram binds a UDP data port on local (e.g. "127.0.0.1:0").
func BindUDPDatagram(local string) (*UDPDatagram, error) {
	addr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	// Best effort: a traffic burst fanning into one node can outrun the
	// platform default socket buffers.
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	return &UDPDatagram{conn: conn, addrs: make(map[string]*net.UDPAddr)}, nil
}

// LocalAddr returns the bound socket address.
func (u *UDPDatagram) LocalAddr() string { return u.conn.LocalAddr().String() }

// WriteTo sends one datagram to addr, memoizing the resolved address so
// the per-packet path never re-parses: a forwarder sends to a handful of
// neighbor ports, millions of times.
func (u *UDPDatagram) WriteTo(b []byte, addr string) error {
	u.mu.Lock()
	ua := u.addrs[addr]
	if ua == nil {
		var err error
		if ua, err = net.ResolveUDPAddr("udp", addr); err != nil {
			u.mu.Unlock()
			return err
		}
		u.addrs[addr] = ua
	}
	u.mu.Unlock()
	_, err := u.conn.WriteToUDP(b, ua)
	return err
}

// ReadFrom blocks for the next datagram from anyone; the wire CRC rejects
// strays and corruption.
func (u *UDPDatagram) ReadFrom(b []byte) (int, error) {
	n, _, err := u.conn.ReadFromUDP(b)
	return n, err
}

// Close closes the socket, unblocking reads.
func (u *UDPDatagram) Close() error { return u.conn.Close() }

// MemNet is an in-memory datagram switchboard for deterministic tests: a
// set of named endpoints that write whole datagrams into each other's
// bounded inboxes. Loss-free up to the ring capacity (overflow drops,
// like a NIC ring); wrap endpoints with WithDatagramFaults for loss.
type MemNet struct {
	mu    sync.Mutex
	ports map[string]*memDatagram
	next  int
}

// NewMemNet returns an empty switchboard.
func NewMemNet() *MemNet { return &MemNet{ports: make(map[string]*memDatagram)} }

// Bind creates a new endpoint with a unique synthetic address.
func (mn *MemNet) Bind() Datagram {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	d := &memDatagram{net: mn, addr: fmt.Sprintf("mem:%d", mn.next)}
	d.cond = sync.NewCond(&d.mu)
	mn.next++
	mn.ports[d.addr] = d
	return d
}

// lookup resolves an address to its endpoint (nil when unbound/closed).
func (mn *MemNet) lookup(addr string) *memDatagram {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	return mn.ports[addr]
}

// drop unregisters a closed endpoint.
func (mn *MemNet) drop(addr string) {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	delete(mn.ports, addr)
}

// memDatagram is one MemNet endpoint.
type memDatagram struct {
	net  *MemNet
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  [][]byte
	closed bool
}

// memDatagramRing bounds each endpoint's inbox; beyond it datagrams drop.
const memDatagramRing = 4096

// LocalAddr returns the endpoint's synthetic address.
func (m *memDatagram) LocalAddr() string { return m.addr }

// WriteTo delivers one datagram into the target's inbox; datagram
// semantics mean writes to an unbound, closed, or full target silently
// drop.
func (m *memDatagram) WriteTo(b []byte, addr string) error {
	p := m.net.lookup(addr)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.inbox) >= memDatagramRing {
		return nil
	}
	p.inbox = append(p.inbox, append([]byte(nil), b...))
	p.cond.Signal()
	return nil
}

// ReadFrom blocks for the next datagram.
func (m *memDatagram) ReadFrom(b []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.inbox) == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		return 0, ErrClosed
	}
	d := m.inbox[0]
	m.inbox[0] = nil
	m.inbox = m.inbox[1:]
	return copy(b, d), nil
}

// Close closes this endpoint: pending and future reads fail, writes to it
// drop.
func (m *memDatagram) Close() error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.net.drop(m.addr)
	return nil
}

// faultDatagram wraps a Datagram with seeded write-side faults — the data
// plane's counterpart of faultPacket (loss and duplication only: the data
// plane is unordered by contract, so reordering adds nothing a test could
// observe).
type faultDatagram struct {
	inner Datagram
	cfg   Fault

	mu sync.Mutex
	r  *rng.Source
}

// WithDatagramFaults wraps d with the seeded fault injector; a zero Fault
// returns d unchanged.
func WithDatagramFaults(d Datagram, f Fault) Datagram {
	if !f.Active() {
		return d
	}
	return &faultDatagram{inner: d, cfg: f, r: rng.New(f.Seed)}
}

// WriteTo applies loss, then duplication.
func (fd *faultDatagram) WriteTo(b []byte, addr string) error {
	fd.mu.Lock()
	drop := fd.cfg.LossProb > 0 && fd.r.Float64() < fd.cfg.LossProb
	dup := !drop && fd.cfg.DupProb > 0 && fd.r.Float64() < fd.cfg.DupProb
	fd.mu.Unlock()
	if drop {
		return nil // lost on the wire
	}
	if err := fd.inner.WriteTo(b, addr); err != nil {
		return err
	}
	if dup {
		return fd.inner.WriteTo(b, addr)
	}
	return nil
}

// ReadFrom passes through.
func (fd *faultDatagram) ReadFrom(b []byte) (int, error) { return fd.inner.ReadFrom(b) }

// LocalAddr passes through.
func (fd *faultDatagram) LocalAddr() string { return fd.inner.LocalAddr() }

// Close passes through.
func (fd *faultDatagram) Close() error { return fd.inner.Close() }
