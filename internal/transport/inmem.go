package transport

import (
	"sync"

	"minroute/internal/wire"
)

// memConn is one side of an in-memory pipe: Send pushes into the peer's
// receive queue, Recv pops from our own. The queue is unbounded, so an
// event loop can Send from within its own Recv processing without
// deadlock — the same property protonet's queues have.
type memConn struct {
	recv *queue
	peer *queue

	mu     sync.Mutex
	closed bool
}

// Pipe returns a connected pair of in-memory Conns. Delivery is
// synchronous with Send (no goroutines), reliable, FIFO, exactly-once —
// the contract with zero machinery, which makes it the reference
// implementation for the conformance suite and the transport of choice
// for deterministic node tests under a virtual clock.
func Pipe() (Conn, Conn) {
	qa, qb := newQueue(), newQueue()
	a := &memConn{recv: qa, peer: qb}
	b := &memConn{recv: qb, peer: qa}
	return a, b
}

// Send delivers f into the peer's receive queue.
func (c *memConn) Send(f *wire.Frame) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !c.peer.push(cloneFrame(f)) {
		return ErrClosed
	}
	return nil
}

// Recv blocks for the next frame.
func (c *memConn) Recv() (*wire.Frame, error) { return c.recv.pop() }

// Close tears down both directions: our pending frames drain on the peer,
// then both sides observe ErrClosed.
func (c *memConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.recv.close()
	c.peer.close()
	return nil
}
