package transport

import (
	"bufio"
	"net"
	"sync"

	"minroute/internal/wire"
)

// tcpConn adapts a net.Conn (TCP or any reliable byte stream) to the frame
// contract. TCP already provides reliable in-order exactly-once bytes, so
// the adapter only adds framing: wire.WriteFrame / wire.ReadFrame with a
// mutex per direction so concurrent Sends never interleave frames.
type tcpConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	rmu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// NewStreamConn wraps an established reliable byte stream as a Conn.
func NewStreamConn(c net.Conn) Conn {
	return &tcpConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// DialTCP connects to a listening peer.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewStreamConn(c), nil
}

// TCPDialer implements Dialer over DialTCP.
type TCPDialer struct{}

// Dial implements Dialer.
func (TCPDialer) Dial(addr string) (Conn, error) { return DialTCP(addr) }

// Send writes one frame to the stream.
func (t *tcpConn) Send(f *wire.Frame) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return wire.WriteFrame(t.c, f)
}

// Recv reads the next frame. Any framing error (bad magic, CRC mismatch)
// is fatal to the stream — byte boundaries are lost — so callers should
// Close on error.
func (t *tcpConn) Recv() (*wire.Frame, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return wire.ReadFrame(t.br)
}

// Close shuts the stream down; blocked Recvs return with an error.
func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.c.Close() })
	return t.closeErr
}

// TCPListener accepts framed peers on a TCP address.
type TCPListener struct {
	l net.Listener
}

// ListenTCP starts listening on addr (use "127.0.0.1:0" for an ephemeral
// port; Addr reports the bound address).
func ListenTCP(addr string) (*TCPListener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPListener{l: l}, nil
}

// Addr returns the bound listen address.
func (tl *TCPListener) Addr() string { return tl.l.Addr().String() }

// Accept blocks for the next inbound peer.
func (tl *TCPListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewStreamConn(c), nil
}

// Close stops accepting; blocked Accepts return with an error.
func (tl *TCPListener) Close() error { return tl.l.Close() }
