// Package graph models the network topology G = (N, L) of the paper: a set
// of routers connected by point-to-point links that are bidirectional but may
// have different characteristics in each direction. Links carry a capacity
// (bits per second) and a propagation delay (seconds); dynamic quantities
// such as flows and marginal-delay costs live in higher layers.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a router. IDs double as the router "address" that the
// paper uses for deterministic tie-breaking ("ties are broken in favor of
// the neighbor with the lowest address").
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Link is one direction of a physical link. From and To identify the
// endpoints; Capacity is in bits per second; PropDelay is in seconds.
type Link struct {
	From      NodeID
	To        NodeID
	Capacity  float64
	PropDelay float64
}

// Graph is a directed multigraph restricted to at most one link per ordered
// node pair. The zero value is an empty graph ready for use via AddNode.
type Graph struct {
	names []string
	index map[string]NodeID
	// adj[i] is sorted by neighbor ID for deterministic iteration.
	adj map[NodeID][]*Link
	// links indexes adj by ordered pair for O(1) lookup.
	links map[[2]NodeID]*Link
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		index: make(map[string]NodeID),
		adj:   make(map[NodeID][]*Link),
		links: make(map[[2]NodeID]*Link),
	}
}

// AddNode adds a router with the given name and returns its ID. Adding a
// name twice returns the existing ID.
func (g *Graph) AddNode(name string) NodeID {
	if id, ok := g.index[name]; ok {
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.index[name] = id
	if g.adj[id] == nil {
		g.adj[id] = nil
	}
	return id
}

// NumNodes reports the number of routers.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumLinks reports the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Name returns the name of node id, or a numeric placeholder when unknown.
func (g *Graph) Name(id NodeID) string {
	if int(id) < 0 || int(id) >= len(g.names) {
		return fmt.Sprintf("node%d", id)
	}
	return g.names[id]
}

// Lookup resolves a node name to its ID.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.index[name]
	return id, ok
}

// MustLookup resolves a node name and panics when absent. Intended for
// hand-built topologies where a typo is a programming error.
func (g *Graph) MustLookup(name string) NodeID {
	id, ok := g.index[name]
	if !ok {
		panic("graph: unknown node " + name)
	}
	return id
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, len(g.names))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// AddLink adds a directed link. It panics when either endpoint is unknown or
// when the link already exists, and returns an error for invalid parameters.
func (g *Graph) AddLink(from, to NodeID, capacity, propDelay float64) error {
	if !g.valid(from) || !g.valid(to) {
		panic("graph: AddLink with unknown endpoint")
	}
	if from == to {
		return fmt.Errorf("graph: self link at %s", g.Name(from))
	}
	if capacity <= 0 {
		return fmt.Errorf("graph: non-positive capacity on %s->%s", g.Name(from), g.Name(to))
	}
	if propDelay < 0 {
		return fmt.Errorf("graph: negative propagation delay on %s->%s", g.Name(from), g.Name(to))
	}
	key := [2]NodeID{from, to}
	if _, dup := g.links[key]; dup {
		return fmt.Errorf("graph: duplicate link %s->%s", g.Name(from), g.Name(to))
	}
	l := &Link{From: from, To: to, Capacity: capacity, PropDelay: propDelay}
	g.links[key] = l
	g.adj[from] = insertSorted(g.adj[from], l)
	return nil
}

// AddDuplex adds both directions of a symmetric link.
func (g *Graph) AddDuplex(a, b NodeID, capacity, propDelay float64) error {
	if err := g.AddLink(a, b, capacity, propDelay); err != nil {
		return err
	}
	return g.AddLink(b, a, capacity, propDelay)
}

// RemoveLink deletes the directed link from->to, reporting whether it
// existed. Used by failure-injection scenarios.
func (g *Graph) RemoveLink(from, to NodeID) bool {
	key := [2]NodeID{from, to}
	if _, ok := g.links[key]; !ok {
		return false
	}
	delete(g.links, key)
	nbrs := g.adj[from]
	for i, l := range nbrs {
		if l.To == to {
			g.adj[from] = append(nbrs[:i:i], nbrs[i+1:]...)
			break
		}
	}
	return true
}

// Link returns the directed link from->to.
func (g *Graph) Link(from, to NodeID) (*Link, bool) {
	l, ok := g.links[[2]NodeID{from, to}]
	return l, ok
}

// Neighbors returns the IDs reachable over one outgoing link from id, in
// ascending order. The slice is freshly allocated.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	nbrs := g.adj[id]
	out := make([]NodeID, len(nbrs))
	for i, l := range nbrs {
		out[i] = l.To
	}
	return out
}

// OutLinks returns the outgoing links of id in ascending neighbor order.
// The returned slice must not be mutated.
func (g *Graph) OutLinks(id NodeID) []*Link {
	return g.adj[id]
}

// Links returns every directed link, ordered by (from, to).
func (g *Graph) Links() []*Link {
	out := make([]*Link, 0, len(g.links))
	//lint:maporder-ok links are collected and sorted by (from, to) before any use
	for _, l := range g.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.names = append([]string(nil), g.names...)
	for name, id := range g.index {
		c.index[name] = id
	}
	for _, l := range g.Links() {
		cp := *l
		c.links[[2]NodeID{l.From, l.To}] = &cp
		c.adj[l.From] = append(c.adj[l.From], &cp)
	}
	return c
}

// Validate checks structural health: symmetric connectivity (each link has a
// reverse link, as the paper assumes bidirectional links) and a single
// connected component. It returns a descriptive error for the first problem.
func (g *Graph) Validate() error {
	if g.NumNodes() == 0 {
		return fmt.Errorf("graph: empty")
	}
	// Sorted order: with several asymmetric links, always name the same one.
	for _, l := range g.Links() {
		if _, ok := g.links[[2]NodeID{l.To, l.From}]; !ok {
			return fmt.Errorf("graph: link %s->%s has no reverse", g.Name(l.From), g.Name(l.To))
		}
	}
	if !g.Connected() {
		return fmt.Errorf("graph: not connected")
	}
	return nil
}

// Connected reports whether every node is reachable from node 0 over
// directed links.
func (g *Graph) Connected() bool {
	if g.NumNodes() == 0 {
		return false
	}
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.adj[n] {
			if !seen[l.To] {
				seen[l.To] = true
				count++
				stack = append(stack, l.To)
			}
		}
	}
	return count == g.NumNodes()
}

// Degree returns the out-degree of id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Diameter returns the hop-count diameter (longest shortest path in hops).
// It returns -1 for a disconnected graph.
func (g *Graph) Diameter() int {
	n := g.NumNodes()
	diam := 0
	for s := 0; s < n; s++ {
		dist := g.bfs(NodeID(s))
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

func (g *Graph) bfs(src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, l := range g.adj[n] {
			if dist[l.To] < 0 {
				dist[l.To] = dist[n] + 1
				queue = append(queue, l.To)
			}
		}
	}
	return dist
}

// HopDistances returns BFS hop counts from src (-1 when unreachable).
func (g *Graph) HopDistances(src NodeID) []int { return g.bfs(src) }

// String renders a compact multi-line description, useful in logs and the
// topology inspection tool.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d nodes, %d directed links\n", g.NumNodes(), g.NumLinks())
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %s -> %s cap=%.0fbps prop=%.3fms\n",
			g.Name(l.From), g.Name(l.To), l.Capacity, l.PropDelay*1e3)
	}
	return b.String()
}

func (g *Graph) valid(id NodeID) bool {
	return int(id) >= 0 && int(id) < len(g.names)
}

func insertSorted(nbrs []*Link, l *Link) []*Link {
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i].To >= l.To })
	nbrs = append(nbrs, nil)
	copy(nbrs[i+1:], nbrs[i:])
	nbrs[i] = l
	return nbrs
}
