package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"minroute/internal/rng"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	for _, pair := range [][2]NodeID{{a, b}, {b, c}, {a, c}} {
		if err := g.AddDuplex(pair[0], pair[1], 1e7, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	b := g.AddNode("x")
	if a != b {
		t.Fatalf("AddNode not idempotent: %d vs %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestLookup(t *testing.T) {
	g := triangle(t)
	id, ok := g.Lookup("b")
	if !ok || g.Name(id) != "b" {
		t.Fatalf("Lookup(b) = %d,%v", id, ok)
	}
	if _, ok := g.Lookup("zz"); ok {
		t.Fatal("Lookup of missing node succeeded")
	}
	if g.MustLookup("c") != 2 {
		t.Fatal("MustLookup wrong id")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on missing node did not panic")
		}
	}()
	triangle(t).MustLookup("nope")
}

func TestAddLinkErrors(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if err := g.AddLink(a, a, 1, 0); err == nil {
		t.Error("self link accepted")
	}
	if err := g.AddLink(a, b, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := g.AddLink(a, b, 1, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.AddLink(a, b, 1, 0); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := g.AddLink(a, b, 2, 0); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	ids := make([]NodeID, 5)
	for i := range ids {
		ids[i] = g.AddNode(strings.Repeat("n", i+1))
	}
	// Add in scrambled order; Neighbors must come back ascending.
	for _, j := range []int{3, 1, 4, 2} {
		if err := g.AddLink(ids[0], ids[j], 1e6, 0); err != nil {
			t.Fatal(err)
		}
	}
	nbrs := g.Neighbors(ids[0])
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors not sorted: %v", nbrs)
		}
	}
	if len(nbrs) != 4 {
		t.Fatalf("len(neighbors) = %d", len(nbrs))
	}
}

func TestRemoveLink(t *testing.T) {
	g := triangle(t)
	a, b := g.MustLookup("a"), g.MustLookup("b")
	if !g.RemoveLink(a, b) {
		t.Fatal("RemoveLink failed")
	}
	if g.RemoveLink(a, b) {
		t.Fatal("RemoveLink on missing link reported true")
	}
	if _, ok := g.Link(a, b); ok {
		t.Fatal("link still present after removal")
	}
	if _, ok := g.Link(b, a); !ok {
		t.Fatal("reverse link unexpectedly removed")
	}
	if got := len(g.Neighbors(a)); got != 1 {
		t.Fatalf("neighbors after removal = %d, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	g := triangle(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	a, b := g.MustLookup("a"), g.MustLookup("b")
	g.RemoveLink(a, b)
	if err := g.Validate(); err == nil {
		t.Fatal("asymmetric graph accepted")
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.Validate(); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestConnectedEmpty(t *testing.T) {
	if New().Connected() {
		t.Fatal("empty graph reported connected")
	}
}

func TestDiameterTriangle(t *testing.T) {
	if d := triangle(t).Diameter(); d != 1 {
		t.Fatalf("triangle diameter = %d, want 1", d)
	}
}

func TestDiameterPath(t *testing.T) {
	g := New()
	prev := g.AddNode("n0")
	for i := 1; i < 5; i++ {
		cur := g.AddNode("n" + string(rune('0'+i)))
		if err := g.AddDuplex(prev, cur, 1e6, 0); err != nil {
			t.Fatal(err)
		}
		prev = cur
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("path diameter = %d, want 4", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("b")
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	a, b := g.MustLookup("a"), g.MustLookup("b")
	g.RemoveLink(a, b)
	if _, ok := c.Link(a, b); !ok {
		t.Fatal("clone affected by mutation of original")
	}
	l, _ := c.Link(b, a)
	l.Capacity = 123
	orig, _ := g.Link(b, a)
	if orig.Capacity == 123 {
		t.Fatal("original affected by mutation of clone")
	}
}

func TestLinksOrdered(t *testing.T) {
	g := triangle(t)
	links := g.Links()
	if len(links) != 6 {
		t.Fatalf("len(links) = %d, want 6", len(links))
	}
	for i := 1; i < len(links); i++ {
		a, b := links[i-1], links[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("links not ordered at %d", i)
		}
	}
}

func TestStringMentionsNodes(t *testing.T) {
	s := triangle(t).String()
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(s, name) {
			t.Fatalf("String() missing node %s: %s", name, s)
		}
	}
}

// randomConnected builds a random connected symmetric graph for property
// tests: a spanning path plus random extra duplex links.
func randomConnected(seed uint64, n int) *Graph {
	r := rng.New(seed)
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("n" + itoa(i))
	}
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddDuplex(NodeID(perm[i-1]), NodeID(perm[i]), 1e6+float64(r.Intn(9))*1e6, float64(r.Intn(10))*1e-4)
	}
	extra := r.Intn(n * 2)
	for i := 0; i < extra; i++ {
		a, b := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if a == b {
			continue
		}
		if _, ok := g.Link(a, b); ok {
			continue
		}
		_ = g.AddDuplex(a, b, 1e6+float64(r.Intn(9))*1e6, float64(r.Intn(10))*1e-4)
	}
	return g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestPropertyRandomGraphsValid(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%14) + 2
		g := randomConnected(seed, n)
		return g.Validate() == nil && g.Diameter() >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHopDistancesTriangleInequality(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%10) + 3
		g := randomConnected(seed, n)
		// BFS distances over each link can differ by at most 1 hop.
		for s := 0; s < n; s++ {
			dist := g.HopDistances(NodeID(s))
			for _, l := range g.Links() {
				if dist[l.To] > dist[l.From]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
