// Package wire defines the live peering frame format — the versioned,
// length-prefixed, CRC-checked envelope that carries protocol messages
// between real MPDA routers over a byte stream (TCP) or datagrams (UDP).
//
// The simulator's protonet harness delivers *lsu.Msg values by pointer and
// simply assumes a reliable, in-order, exactly-once channel. A live peer
// gets none of that for free: it needs framing to find message boundaries
// in a TCP stream, integrity checking to reject corrupt datagrams, session
// messages to establish and monitor neighbor liveness, and sequence numbers
// for the UDP ARQ layer that rebuilds the reliable channel. This package is
// that deployable envelope; internal/transport provides the channels and
// internal/node the session logic.
//
// Frame layout (big endian):
//
//	offset size field
//	0      2    magic 0x4D52 ("MR")
//	2      1    version (1)
//	3      1    type (Hello, Heartbeat, Bye, LSU, Ack, Sack)
//	4      4    seq — ARQ sequence number (0 outside the ARQ layer)
//	8      4    payload length (bounded by MaxPayload)
//	12     n    payload
//	12+n   4    CRC-32C (Castagnoli) over bytes [0, 12+n)
//
// Payload per type: Hello carries the 4-byte sender node ID; LSU carries
// one lsu.Msg in its existing binary encoding; Heartbeat, Bye, and Ack are
// empty (Ack's information is its cumulative seq); Sack carries the
// selective-repeat out-of-order bitmap (cumulative ack in seq, bit i of
// the payload acknowledging seq cum+1+i, trailing zero bytes trimmed);
// Data carries one data-plane packet (DataPacket: TTL, flow ID, origin
// timestamp, accumulated emulated latency) outside the ARQ entirely.
// Frames may be coalesced back to back inside one datagram; DecodeSome
// iterates them. Decode validates the payload against its type, so an
// accepted frame always re-encodes to the identical bytes (the canonical
// round trip FuzzFrameRoundTrip pins).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// Type discriminates the frame kinds.
type Type uint8

// Frame types. Hello opens a peer session and names the sender; Heartbeat
// proves liveness between LSUs; Bye announces a graceful shutdown so the
// peer can take the link down immediately instead of waiting out the dead
// timer; LSU carries one link-state update; Ack is the legacy go-back-N
// cumulative acknowledgment (distinct from the protocol-level ACK flag
// inside an LSU payload, which acknowledges MPDA flooding); Sack is the
// selective-repeat acknowledgment — cumulative ack in Seq plus a bitmap of
// out-of-order receptions in the payload.
const (
	TypeHello Type = iota + 1
	TypeHeartbeat
	TypeBye
	TypeLSU
	TypeAck
	TypeSack
	// TypeData carries one data-plane packet: fire-and-forget (never
	// sequenced by the ARQ; Seq stays 0), forwarded hop by hop under the
	// phi tables. The payload is the fixed DataPacket header plus an
	// optional opaque body.
	TypeData
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeBye:
		return "bye"
	case TypeLSU:
		return "lsu"
	case TypeAck:
		return "ack"
	case TypeSack:
		return "sack"
	case TypeData:
		return "data"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Wire-format constants.
const (
	// Magic marks the first two bytes of every frame.
	Magic uint16 = 0x4D52
	// Version is the only frame version this code speaks.
	Version = 1
	// HeaderBytes is the fixed header size before the payload.
	HeaderBytes = 12
	// TrailerBytes is the CRC suffix size.
	TrailerBytes = 4
	// MaxPayload bounds one frame's payload: an LSU at the lsu.MaxEntries
	// limit (65535 entries of 17 bytes plus the 7-byte header) fits with
	// room to spare, and a decoder can never be talked into a huge
	// allocation by a corrupt length field.
	MaxPayload = 1 << 21
	// MaxSackBytes bounds a Sack frame's bitmap payload: 512 bytes = 4096
	// selectively acknowledgeable sequence numbers past the cumulative ack,
	// matching the ARQ layer's default reorder-buffer bound.
	MaxSackBytes = 512
	// helloBytes is the exact Hello payload size (the sender node ID).
	helloBytes = 4
	// DataHeaderBytes is the fixed DataPacket header inside a Data
	// payload; any bytes past it are the opaque body.
	DataHeaderBytes = 38
	// MaxDataBody bounds a Data frame's body so header + body + envelope
	// always fits one transport datagram with room to spare.
	MaxDataBody = 32 << 10
)

// castagnoli is the CRC-32C table; crc32.MakeTable memoizes internally but
// computing it once keeps the hot path obvious.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded frame. Payload is owned by the frame.
type Frame struct {
	Type Type
	// Seq is the ARQ sequence number: assigned by the UDP ARQ sender,
	// zero on transports that are already reliable and in Ack frames it
	// holds the cumulative acknowledgment.
	Seq     uint32
	Payload []byte
}

// EncodedBytes returns the encoded frame size.
func (f *Frame) EncodedBytes() int { return HeaderBytes + len(f.Payload) + TrailerBytes }

// AppendEncode appends the encoded frame to dst and returns the extended
// slice. It errors when the payload exceeds MaxPayload or the type or
// payload shape is invalid — the encoder refuses anything the decoder
// would reject, keeping the format closed under round trips.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	if err := validate(f.Type, f.Payload); err != nil {
		return nil, err
	}
	start := len(dst)
	var hdr [HeaderBytes]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[4:8], f.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	var crc [TrailerBytes]byte
	binary.BigEndian.PutUint32(crc[:], sum)
	return append(dst, crc[:]...), nil
}

// Encode returns the encoded frame.
func (f *Frame) Encode() ([]byte, error) {
	return f.AppendEncode(make([]byte, 0, f.EncodedBytes()))
}

// validate checks the type/payload pairing shared by Encode and Decode.
func validate(t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	switch t {
	case TypeHello:
		if len(payload) != helloBytes {
			return fmt.Errorf("wire: hello payload must be %d bytes, got %d", helloBytes, len(payload))
		}
		if int32(binary.BigEndian.Uint32(payload)) < 0 {
			return fmt.Errorf("wire: hello names negative node %d", int32(binary.BigEndian.Uint32(payload)))
		}
	case TypeHeartbeat, TypeBye, TypeAck:
		if len(payload) != 0 {
			return fmt.Errorf("wire: %s frame must have empty payload, got %d bytes", t, len(payload))
		}
	case TypeLSU:
		if err := lsu.Validate(payload); err != nil {
			return fmt.Errorf("wire: lsu payload: %w", err)
		}
	case TypeSack:
		if len(payload) > MaxSackBytes {
			return fmt.Errorf("wire: sack bitmap %d exceeds limit %d", len(payload), MaxSackBytes)
		}
		if len(payload) > 0 && payload[len(payload)-1] == 0 {
			// Canonical form: trailing zero bytes carry no information, so a
			// valid encoder always trims them — keeping the format closed
			// under the round trip the fuzzer pins.
			return fmt.Errorf("wire: sack bitmap has trailing zero byte")
		}
	case TypeData:
		if err := validateData(payload); err != nil {
			return fmt.Errorf("wire: data payload: %w", err)
		}
	default:
		return fmt.Errorf("wire: unknown frame type %d", uint8(t))
	}
	return nil
}

// Decode parses one frame occupying exactly buf — the datagram shape. The
// returned frame's payload aliases buf; callers that retain the frame past
// the buffer's reuse must copy. Every length is bounds-checked before use
// and the CRC is verified before any payload validation, so arbitrary
// bytes can never panic the decoder.
func Decode(buf []byte) (*Frame, error) {
	f := new(Frame)
	if err := DecodeInto(f, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto is the scratch-reuse form of Decode: it parses one frame
// occupying exactly buf into the caller-provided f, allocating nothing.
// The frame's payload aliases buf.
func DecodeInto(f *Frame, buf []byte) error {
	n, err := DecodeSome(f, buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(buf)-n)
	}
	return nil
}

// DecodeSome parses the first frame in buf into f, returning the number of
// bytes consumed — the iteration primitive for coalesced datagrams, which
// carry several frames back to back:
//
//	for len(buf) > 0 {
//		n, err := wire.DecodeSome(&f, buf)
//		if err != nil { break }
//		handle(&f); buf = buf[n:]
//	}
//
// Like DecodeInto it allocates nothing; the payload aliases buf.
func DecodeSome(f *Frame, buf []byte) (int, error) {
	if len(buf) < HeaderBytes+TrailerBytes {
		return 0, fmt.Errorf("wire: short frame (%d bytes)", len(buf))
	}
	if m := binary.BigEndian.Uint16(buf[0:2]); m != Magic {
		return 0, fmt.Errorf("wire: bad magic %#04x", m)
	}
	if buf[2] != Version {
		return 0, fmt.Errorf("wire: unsupported version %d", buf[2])
	}
	plen := binary.BigEndian.Uint32(buf[8:12])
	if plen > MaxPayload {
		return 0, fmt.Errorf("wire: payload length %d exceeds limit %d", plen, MaxPayload)
	}
	total := HeaderBytes + int(plen) + TrailerBytes
	if len(buf) < total {
		return 0, fmt.Errorf("wire: truncated frame: have %d of %d bytes", len(buf), total)
	}
	body := buf[:total-TrailerBytes]
	want := binary.BigEndian.Uint32(buf[total-TrailerBytes : total])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, fmt.Errorf("wire: CRC mismatch: computed %#08x, frame says %#08x", got, want)
	}
	f.Type = Type(buf[3])
	f.Seq = binary.BigEndian.Uint32(buf[4:8])
	f.Payload = body[HeaderBytes:]
	if len(f.Payload) == 0 {
		f.Payload = nil
	}
	if err := validate(f.Type, f.Payload); err != nil {
		return 0, err
	}
	return total, nil
}

// WriteFrame encodes f to w in one Write call (so a frame is never
// interleaved when callers serialize on the writer).
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := f.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from a byte stream. Stream corruption
// (bad magic, bad CRC, oversized length) is returned as an error; the
// stream should be torn down, because framing is lost. The returned
// frame's payload is freshly allocated.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [HeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(hdr[8:12])
	if m := binary.BigEndian.Uint16(hdr[0:2]); m != Magic {
		return nil, fmt.Errorf("wire: bad magic %#04x", m)
	}
	if plen > MaxPayload {
		return nil, fmt.Errorf("wire: payload length %d exceeds limit %d", plen, MaxPayload)
	}
	buf := make([]byte, HeaderBytes+int(plen)+TrailerBytes)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderBytes:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Decode(buf)
}

// NewHello builds a Hello frame naming the sender.
func NewHello(id graph.NodeID) *Frame {
	p := make([]byte, helloBytes)
	binary.BigEndian.PutUint32(p, uint32(id))
	return &Frame{Type: TypeHello, Payload: p}
}

// HelloNode extracts the sender node ID from a Hello frame.
func HelloNode(f *Frame) (graph.NodeID, error) {
	if f.Type != TypeHello || len(f.Payload) != helloBytes {
		return graph.None, fmt.Errorf("wire: not a hello frame (%s, %d bytes)", f.Type, len(f.Payload))
	}
	return graph.NodeID(binary.BigEndian.Uint32(f.Payload)), nil
}

// NewLSU wraps one link-state update.
func NewLSU(m *lsu.Msg) (*Frame, error) {
	p, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	return &Frame{Type: TypeLSU, Payload: p}, nil
}

// LSUMsg decodes the link-state update carried by an LSU frame.
func LSUMsg(f *Frame) (*lsu.Msg, error) {
	if f.Type != TypeLSU {
		return nil, fmt.Errorf("wire: not an lsu frame (%s)", f.Type)
	}
	return lsu.Unmarshal(f.Payload)
}

// NewHeartbeat builds a liveness probe frame.
func NewHeartbeat() *Frame { return &Frame{Type: TypeHeartbeat} }

// NewBye builds a graceful-shutdown frame.
func NewBye() *Frame { return &Frame{Type: TypeBye} }

// NewAck builds a legacy cumulative acknowledgment for sequence cum.
func NewAck(cum uint32) *Frame { return &Frame{Type: TypeAck, Seq: cum} }

// NewSack builds a selective acknowledgment: cum is the cumulative ack
// (every sequence ≤ cum received), and bit i of the bitmap — bit i%8 of
// byte i/8 — reports out-of-order receipt of sequence cum+1+i. The bitmap
// must be canonical (no trailing zero byte) and is owned by the frame
// afterwards; nil means no out-of-order receptions.
func NewSack(cum uint32, bitmap []byte) *Frame {
	if len(bitmap) == 0 {
		bitmap = nil
	}
	return &Frame{Type: TypeSack, Seq: cum, Payload: bitmap}
}

// SackBit reports whether bit i is set in a Sack bitmap (bits beyond the
// bitmap are unset).
func SackBit(bitmap []byte, i int) bool {
	if i < 0 || i/8 >= len(bitmap) {
		return false
	}
	return bitmap[i/8]&(1<<(uint(i)%8)) != 0
}

// DataPacket is the header of one data-plane packet. The forwarding plane
// carries the packet's emulated size (SizeBits) instead of padding bytes,
// and charges each hop's link latency arithmetically into Accum: the
// delivery sink reads end-to-end delay as Accum plus the real clock span
// SentAt→now, which is what lets a loopback mesh cross-validate against
// the simulator's link model without real multi-millisecond sleeps.
//
// Header layout inside a Data payload (big endian, DataHeaderBytes total):
//
//	offset size field
//	0      4    src node ID
//	4      4    dst node ID
//	8      1    TTL (remaining hops; forwarders decrement and drop at 0)
//	9      1    hops taken so far
//	10     8    flow ID (the 5-tuple-hash stand-in driving path stickiness)
//	18     8    SentAt — origin clock seconds, float64 bits
//	26     8    Accum — accumulated emulated link latency seconds, float64 bits
//	34     4    SizeBits — emulated packet size in bits
//	38     n    opaque body (optional, bounded by MaxDataBody)
type DataPacket struct {
	Src, Dst graph.NodeID
	TTL      uint8
	Hops     uint8
	FlowID   uint64
	SentAt   float64
	Accum    float64
	SizeBits uint32
	// Body is the opaque application bytes; nil for the usual
	// measurement-traffic packets. Decoded bodies alias the frame buffer.
	Body []byte
}

// validateData checks a Data payload's shape and field sanity. Times must
// be finite and non-negative so every accepted packet yields a sane delay
// sample, and rejecting NaN keeps the format closed under the canonical
// re-encode round trip (NaN aside, float64 bits survive decode→encode
// bit-exactly).
func validateData(payload []byte) error {
	if len(payload) < DataHeaderBytes {
		return fmt.Errorf("header needs %d bytes, got %d", DataHeaderBytes, len(payload))
	}
	if body := len(payload) - DataHeaderBytes; body > MaxDataBody {
		return fmt.Errorf("body %d exceeds limit %d", body, MaxDataBody)
	}
	if int32(binary.BigEndian.Uint32(payload[0:4])) < 0 {
		return fmt.Errorf("negative src node")
	}
	if int32(binary.BigEndian.Uint32(payload[4:8])) < 0 {
		return fmt.Errorf("negative dst node")
	}
	for _, f := range []struct {
		name string
		off  int
	}{{"sent_at", 18}, {"accum", 26}} {
		v := math.Float64frombits(binary.BigEndian.Uint64(payload[f.off : f.off+8]))
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%s %g not a finite non-negative time", f.name, v)
		}
	}
	return nil
}

// AppendDataPayload appends p's encoded payload (header plus body) to dst.
func AppendDataPayload(dst []byte, p *DataPacket) []byte {
	var hdr [DataHeaderBytes]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(p.Src))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(p.Dst))
	hdr[8] = p.TTL
	hdr[9] = p.Hops
	binary.BigEndian.PutUint64(hdr[10:18], p.FlowID)
	binary.BigEndian.PutUint64(hdr[18:26], math.Float64bits(p.SentAt))
	binary.BigEndian.PutUint64(hdr[26:34], math.Float64bits(p.Accum))
	binary.BigEndian.PutUint32(hdr[34:38], p.SizeBits)
	dst = append(dst, hdr[:]...)
	return append(dst, p.Body...)
}

// NewData wraps one data packet in a frame, validating it on the way in
// (so the encoder refuses anything a receiving forwarder would reject).
func NewData(p *DataPacket) (*Frame, error) {
	payload := AppendDataPayload(make([]byte, 0, DataHeaderBytes+len(p.Body)), p)
	if err := validate(TypeData, payload); err != nil {
		return nil, err
	}
	return &Frame{Type: TypeData, Payload: payload}, nil
}

// DecodeDataPacket parses a Data payload into p without allocating; the
// body aliases the payload. Decode/DecodeSome already validated accepted
// frames, but the parse revalidates so it is safe on raw bytes too.
func DecodeDataPacket(p *DataPacket, payload []byte) error {
	if err := validateData(payload); err != nil {
		return fmt.Errorf("wire: data payload: %w", err)
	}
	p.Src = graph.NodeID(binary.BigEndian.Uint32(payload[0:4]))
	p.Dst = graph.NodeID(binary.BigEndian.Uint32(payload[4:8]))
	p.TTL = payload[8]
	p.Hops = payload[9]
	p.FlowID = binary.BigEndian.Uint64(payload[10:18])
	p.SentAt = math.Float64frombits(binary.BigEndian.Uint64(payload[18:26]))
	p.Accum = math.Float64frombits(binary.BigEndian.Uint64(payload[26:34]))
	p.SizeBits = binary.BigEndian.Uint32(payload[34:38])
	if body := payload[DataHeaderBytes:]; len(body) > 0 {
		p.Body = body
	} else {
		p.Body = nil
	}
	return nil
}

// DataPacketOf decodes the packet carried by a Data frame.
func DataPacketOf(f *Frame) (DataPacket, error) {
	var p DataPacket
	if f.Type != TypeData {
		return p, fmt.Errorf("wire: not a data frame (%s)", f.Type)
	}
	err := DecodeDataPacket(&p, f.Payload)
	return p, err
}
