// Package wire defines the live peering frame format — the versioned,
// length-prefixed, CRC-checked envelope that carries protocol messages
// between real MPDA routers over a byte stream (TCP) or datagrams (UDP).
//
// The simulator's protonet harness delivers *lsu.Msg values by pointer and
// simply assumes a reliable, in-order, exactly-once channel. A live peer
// gets none of that for free: it needs framing to find message boundaries
// in a TCP stream, integrity checking to reject corrupt datagrams, session
// messages to establish and monitor neighbor liveness, and sequence numbers
// for the UDP ARQ layer that rebuilds the reliable channel. This package is
// that deployable envelope; internal/transport provides the channels and
// internal/node the session logic.
//
// Frame layout (big endian):
//
//	offset size field
//	0      2    magic 0x4D52 ("MR")
//	2      1    version (1)
//	3      1    type (Hello, Heartbeat, Bye, LSU, Ack, Sack)
//	4      4    seq — ARQ sequence number (0 outside the ARQ layer)
//	8      4    payload length (bounded by MaxPayload)
//	12     n    payload
//	12+n   4    CRC-32C (Castagnoli) over bytes [0, 12+n)
//
// Payload per type: Hello carries the 4-byte sender node ID; LSU carries
// one lsu.Msg in its existing binary encoding; Heartbeat, Bye, and Ack are
// empty (Ack's information is its cumulative seq); Sack carries the
// selective-repeat out-of-order bitmap (cumulative ack in seq, bit i of
// the payload acknowledging seq cum+1+i, trailing zero bytes trimmed).
// Frames may be coalesced back to back inside one datagram; DecodeSome
// iterates them. Decode validates the payload against its type, so an
// accepted frame always re-encodes to the identical bytes (the canonical
// round trip FuzzFrameRoundTrip pins).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// Type discriminates the frame kinds.
type Type uint8

// Frame types. Hello opens a peer session and names the sender; Heartbeat
// proves liveness between LSUs; Bye announces a graceful shutdown so the
// peer can take the link down immediately instead of waiting out the dead
// timer; LSU carries one link-state update; Ack is the legacy go-back-N
// cumulative acknowledgment (distinct from the protocol-level ACK flag
// inside an LSU payload, which acknowledges MPDA flooding); Sack is the
// selective-repeat acknowledgment — cumulative ack in Seq plus a bitmap of
// out-of-order receptions in the payload.
const (
	TypeHello Type = iota + 1
	TypeHeartbeat
	TypeBye
	TypeLSU
	TypeAck
	TypeSack
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeBye:
		return "bye"
	case TypeLSU:
		return "lsu"
	case TypeAck:
		return "ack"
	case TypeSack:
		return "sack"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Wire-format constants.
const (
	// Magic marks the first two bytes of every frame.
	Magic uint16 = 0x4D52
	// Version is the only frame version this code speaks.
	Version = 1
	// HeaderBytes is the fixed header size before the payload.
	HeaderBytes = 12
	// TrailerBytes is the CRC suffix size.
	TrailerBytes = 4
	// MaxPayload bounds one frame's payload: an LSU at the lsu.MaxEntries
	// limit (65535 entries of 17 bytes plus the 7-byte header) fits with
	// room to spare, and a decoder can never be talked into a huge
	// allocation by a corrupt length field.
	MaxPayload = 1 << 21
	// MaxSackBytes bounds a Sack frame's bitmap payload: 512 bytes = 4096
	// selectively acknowledgeable sequence numbers past the cumulative ack,
	// matching the ARQ layer's default reorder-buffer bound.
	MaxSackBytes = 512
	// helloBytes is the exact Hello payload size (the sender node ID).
	helloBytes = 4
)

// castagnoli is the CRC-32C table; crc32.MakeTable memoizes internally but
// computing it once keeps the hot path obvious.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded frame. Payload is owned by the frame.
type Frame struct {
	Type Type
	// Seq is the ARQ sequence number: assigned by the UDP ARQ sender,
	// zero on transports that are already reliable and in Ack frames it
	// holds the cumulative acknowledgment.
	Seq     uint32
	Payload []byte
}

// EncodedBytes returns the encoded frame size.
func (f *Frame) EncodedBytes() int { return HeaderBytes + len(f.Payload) + TrailerBytes }

// AppendEncode appends the encoded frame to dst and returns the extended
// slice. It errors when the payload exceeds MaxPayload or the type or
// payload shape is invalid — the encoder refuses anything the decoder
// would reject, keeping the format closed under round trips.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	if err := validate(f.Type, f.Payload); err != nil {
		return nil, err
	}
	start := len(dst)
	var hdr [HeaderBytes]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[4:8], f.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	var crc [TrailerBytes]byte
	binary.BigEndian.PutUint32(crc[:], sum)
	return append(dst, crc[:]...), nil
}

// Encode returns the encoded frame.
func (f *Frame) Encode() ([]byte, error) {
	return f.AppendEncode(make([]byte, 0, f.EncodedBytes()))
}

// validate checks the type/payload pairing shared by Encode and Decode.
func validate(t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds limit %d", len(payload), MaxPayload)
	}
	switch t {
	case TypeHello:
		if len(payload) != helloBytes {
			return fmt.Errorf("wire: hello payload must be %d bytes, got %d", helloBytes, len(payload))
		}
		if int32(binary.BigEndian.Uint32(payload)) < 0 {
			return fmt.Errorf("wire: hello names negative node %d", int32(binary.BigEndian.Uint32(payload)))
		}
	case TypeHeartbeat, TypeBye, TypeAck:
		if len(payload) != 0 {
			return fmt.Errorf("wire: %s frame must have empty payload, got %d bytes", t, len(payload))
		}
	case TypeLSU:
		if err := lsu.Validate(payload); err != nil {
			return fmt.Errorf("wire: lsu payload: %w", err)
		}
	case TypeSack:
		if len(payload) > MaxSackBytes {
			return fmt.Errorf("wire: sack bitmap %d exceeds limit %d", len(payload), MaxSackBytes)
		}
		if len(payload) > 0 && payload[len(payload)-1] == 0 {
			// Canonical form: trailing zero bytes carry no information, so a
			// valid encoder always trims them — keeping the format closed
			// under the round trip the fuzzer pins.
			return fmt.Errorf("wire: sack bitmap has trailing zero byte")
		}
	default:
		return fmt.Errorf("wire: unknown frame type %d", uint8(t))
	}
	return nil
}

// Decode parses one frame occupying exactly buf — the datagram shape. The
// returned frame's payload aliases buf; callers that retain the frame past
// the buffer's reuse must copy. Every length is bounds-checked before use
// and the CRC is verified before any payload validation, so arbitrary
// bytes can never panic the decoder.
func Decode(buf []byte) (*Frame, error) {
	f := new(Frame)
	if err := DecodeInto(f, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto is the scratch-reuse form of Decode: it parses one frame
// occupying exactly buf into the caller-provided f, allocating nothing.
// The frame's payload aliases buf.
func DecodeInto(f *Frame, buf []byte) error {
	n, err := DecodeSome(f, buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(buf)-n)
	}
	return nil
}

// DecodeSome parses the first frame in buf into f, returning the number of
// bytes consumed — the iteration primitive for coalesced datagrams, which
// carry several frames back to back:
//
//	for len(buf) > 0 {
//		n, err := wire.DecodeSome(&f, buf)
//		if err != nil { break }
//		handle(&f); buf = buf[n:]
//	}
//
// Like DecodeInto it allocates nothing; the payload aliases buf.
func DecodeSome(f *Frame, buf []byte) (int, error) {
	if len(buf) < HeaderBytes+TrailerBytes {
		return 0, fmt.Errorf("wire: short frame (%d bytes)", len(buf))
	}
	if m := binary.BigEndian.Uint16(buf[0:2]); m != Magic {
		return 0, fmt.Errorf("wire: bad magic %#04x", m)
	}
	if buf[2] != Version {
		return 0, fmt.Errorf("wire: unsupported version %d", buf[2])
	}
	plen := binary.BigEndian.Uint32(buf[8:12])
	if plen > MaxPayload {
		return 0, fmt.Errorf("wire: payload length %d exceeds limit %d", plen, MaxPayload)
	}
	total := HeaderBytes + int(plen) + TrailerBytes
	if len(buf) < total {
		return 0, fmt.Errorf("wire: truncated frame: have %d of %d bytes", len(buf), total)
	}
	body := buf[:total-TrailerBytes]
	want := binary.BigEndian.Uint32(buf[total-TrailerBytes : total])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, fmt.Errorf("wire: CRC mismatch: computed %#08x, frame says %#08x", got, want)
	}
	f.Type = Type(buf[3])
	f.Seq = binary.BigEndian.Uint32(buf[4:8])
	f.Payload = body[HeaderBytes:]
	if len(f.Payload) == 0 {
		f.Payload = nil
	}
	if err := validate(f.Type, f.Payload); err != nil {
		return 0, err
	}
	return total, nil
}

// WriteFrame encodes f to w in one Write call (so a frame is never
// interleaved when callers serialize on the writer).
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := f.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from a byte stream. Stream corruption
// (bad magic, bad CRC, oversized length) is returned as an error; the
// stream should be torn down, because framing is lost. The returned
// frame's payload is freshly allocated.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [HeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(hdr[8:12])
	if m := binary.BigEndian.Uint16(hdr[0:2]); m != Magic {
		return nil, fmt.Errorf("wire: bad magic %#04x", m)
	}
	if plen > MaxPayload {
		return nil, fmt.Errorf("wire: payload length %d exceeds limit %d", plen, MaxPayload)
	}
	buf := make([]byte, HeaderBytes+int(plen)+TrailerBytes)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderBytes:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Decode(buf)
}

// NewHello builds a Hello frame naming the sender.
func NewHello(id graph.NodeID) *Frame {
	p := make([]byte, helloBytes)
	binary.BigEndian.PutUint32(p, uint32(id))
	return &Frame{Type: TypeHello, Payload: p}
}

// HelloNode extracts the sender node ID from a Hello frame.
func HelloNode(f *Frame) (graph.NodeID, error) {
	if f.Type != TypeHello || len(f.Payload) != helloBytes {
		return graph.None, fmt.Errorf("wire: not a hello frame (%s, %d bytes)", f.Type, len(f.Payload))
	}
	return graph.NodeID(binary.BigEndian.Uint32(f.Payload)), nil
}

// NewLSU wraps one link-state update.
func NewLSU(m *lsu.Msg) (*Frame, error) {
	p, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	return &Frame{Type: TypeLSU, Payload: p}, nil
}

// LSUMsg decodes the link-state update carried by an LSU frame.
func LSUMsg(f *Frame) (*lsu.Msg, error) {
	if f.Type != TypeLSU {
		return nil, fmt.Errorf("wire: not an lsu frame (%s)", f.Type)
	}
	return lsu.Unmarshal(f.Payload)
}

// NewHeartbeat builds a liveness probe frame.
func NewHeartbeat() *Frame { return &Frame{Type: TypeHeartbeat} }

// NewBye builds a graceful-shutdown frame.
func NewBye() *Frame { return &Frame{Type: TypeBye} }

// NewAck builds a legacy cumulative acknowledgment for sequence cum.
func NewAck(cum uint32) *Frame { return &Frame{Type: TypeAck, Seq: cum} }

// NewSack builds a selective acknowledgment: cum is the cumulative ack
// (every sequence ≤ cum received), and bit i of the bitmap — bit i%8 of
// byte i/8 — reports out-of-order receipt of sequence cum+1+i. The bitmap
// must be canonical (no trailing zero byte) and is owned by the frame
// afterwards; nil means no out-of-order receptions.
func NewSack(cum uint32, bitmap []byte) *Frame {
	if len(bitmap) == 0 {
		bitmap = nil
	}
	return &Frame{Type: TypeSack, Seq: cum, Payload: bitmap}
}

// SackBit reports whether bit i is set in a Sack bitmap (bits beyond the
// bitmap are unset).
func SackBit(bitmap []byte, i int) bool {
	if i < 0 || i/8 >= len(bitmap) {
		return false
	}
	return bitmap[i/8]&(1<<(uint(i)%8)) != 0
}
