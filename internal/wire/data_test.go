package wire

import (
	"bytes"
	"math"
	"testing"
)

// TestDataRoundTrip pins the DataPacket codec: every field survives
// encode→decode, and the framed form survives the full frame round trip.
func TestDataRoundTrip(t *testing.T) {
	p := DataPacket{
		Src: 3, Dst: 9, TTL: 32, Hops: 4, FlowID: 0x1234_5678_9abc_def0,
		SentAt: 12.25, Accum: 0.00375, SizeBits: 4096,
		Body: []byte("payload"),
	}
	f, err := NewData(&p)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DataPacketOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.TTL != p.TTL || got.Hops != p.Hops {
		t.Fatalf("header mismatch: got %+v want %+v", got, p)
	}
	if got.FlowID != p.FlowID || got.SentAt != p.SentAt || got.Accum != p.Accum || got.SizeBits != p.SizeBits {
		t.Fatalf("field mismatch: got %+v want %+v", got, p)
	}
	if !bytes.Equal(got.Body, p.Body) {
		t.Fatalf("body mismatch: got %q want %q", got.Body, p.Body)
	}
}

// TestDataValidation rejects malformed packets on both the encode and the
// decode side, keeping the format closed under round trips.
func TestDataValidation(t *testing.T) {
	cases := []struct {
		name string
		p    DataPacket
	}{
		{"negative sent_at", DataPacket{Src: 0, Dst: 1, TTL: 8, SentAt: -1}},
		{"nan accum", DataPacket{Src: 0, Dst: 1, TTL: 8, Accum: math.NaN()}},
		{"inf sent_at", DataPacket{Src: 0, Dst: 1, TTL: 8, SentAt: math.Inf(1)}},
		{"oversized body", DataPacket{Src: 0, Dst: 1, TTL: 8, Body: make([]byte, MaxDataBody+1)}},
	}
	for _, tc := range cases {
		if _, err := NewData(&tc.p); err == nil {
			t.Errorf("%s: NewData accepted invalid packet", tc.name)
		}
	}
	// Decode-side: short header, negative node IDs.
	var p DataPacket
	if err := DecodeDataPacket(&p, make([]byte, DataHeaderBytes-1)); err == nil {
		t.Error("short payload accepted")
	}
	ok, err := NewData(&DataPacket{Src: 1, Dst: 2, TTL: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), ok.Payload...)
	bad[0] = 0x80 // sign bit of src
	if err := DecodeDataPacket(&p, bad); err == nil {
		t.Error("negative src accepted")
	}
}

// TestDataFrameOutsideARQ asserts a data frame carries Seq 0 — the
// fire-and-forget contract: the ARQ never sequences the data plane.
func TestDataFrameOutsideARQ(t *testing.T) {
	f, err := NewData(&DataPacket{Src: 0, Dst: 1, TTL: 16})
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 0 {
		t.Fatalf("data frame carries ARQ seq %d", f.Seq)
	}
}
