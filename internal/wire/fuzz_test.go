package wire

import (
	"bytes"
	"testing"

	"minroute/internal/lsu"
)

// FuzzFrameRoundTrip asserts the frame decoder never panics on arbitrary
// bytes and that every frame it accepts re-encodes to the identical wire
// bytes — the canonical round trip. Mirrors internal/lsu's FuzzUnmarshal:
// the decoder is the trust boundary between the network and the protocol,
// so it must be total over arbitrary input.
func FuzzFrameRoundTrip(f *testing.F) {
	seedMsg := &lsu.Msg{From: 3, Ack: true, Entries: []lsu.Entry{
		{Op: lsu.OpAdd, Head: 1, Tail: 2, Cost: 0.5},
		{Op: lsu.OpDelete, Head: 9, Tail: 8},
	}}
	lf, err := NewLSU(seedMsg)
	if err != nil {
		f.Fatal(err)
	}
	lf.Seq = 12345
	df, err := NewData(&DataPacket{
		Src: 2, Dst: 7, TTL: 31, Hops: 1, FlowID: 0xdeadbeef,
		SentAt: 1.5, Accum: 0.0025, SizeBits: 8192,
	})
	if err != nil {
		f.Fatal(err)
	}
	singles := []*Frame{
		NewHello(7), NewHeartbeat(), NewBye(), lf, NewAck(9),
		NewSack(3, nil), NewSack(12345, []byte{0x01}),
		NewSack(9, []byte{0xff, 0x00, 0x80}),
		df,
	}
	for _, fr := range singles {
		buf, err := fr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Coalesced multi-frame datagrams: the shape the selective-repeat ARQ
	// puts on the wire (a SACK leading a run of data frames).
	coalesced := []byte(nil)
	for _, fr := range []*Frame{NewSack(4, []byte{0x05}), NewHello(1), lf, NewHeartbeat()} {
		var err error
		if coalesced, err = fr.AppendEncode(coalesced); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(coalesced)
	f.Add(append(append([]byte(nil), coalesced...), 0x4D, 0x52, 1)) // truncated tail
	f.Add([]byte{})
	f.Add([]byte{0x4D, 0x52, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err == nil {
			out, err := fr.Encode()
			if err != nil {
				t.Fatalf("accepted frame failed to re-encode: %v", err)
			}
			if !bytes.Equal(data, out) {
				t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, out)
			}
			// LSU payloads must decode into a well-formed message.
			if fr.Type == TypeLSU {
				if _, err := LSUMsg(fr); err != nil {
					t.Fatalf("accepted LSU frame with undecodable payload: %v", err)
				}
			}
		}
		// Coalesced walk: DecodeSome must be total over arbitrary input,
		// and every frame it accepts must re-encode to exactly the bytes
		// it consumed — the per-frame canonical round trip inside a
		// multi-frame datagram.
		rest := data
		for len(rest) > 0 {
			var g Frame
			used, err := DecodeSome(&g, rest)
			if err != nil {
				break
			}
			if used <= 0 || used > len(rest) {
				t.Fatalf("DecodeSome consumed %d of %d bytes", used, len(rest))
			}
			out, err := g.Encode()
			if err != nil {
				t.Fatalf("accepted coalesced frame failed to re-encode: %v", err)
			}
			if !bytes.Equal(rest[:used], out) {
				t.Fatalf("coalesced round trip not canonical:\n in  %x\n out %x", rest[:used], out)
			}
			rest = rest[used:]
		}
	})
}
