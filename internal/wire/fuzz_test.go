package wire

import (
	"bytes"
	"testing"

	"minroute/internal/lsu"
)

// FuzzFrameRoundTrip asserts the frame decoder never panics on arbitrary
// bytes and that every frame it accepts re-encodes to the identical wire
// bytes — the canonical round trip. Mirrors internal/lsu's FuzzUnmarshal:
// the decoder is the trust boundary between the network and the protocol,
// so it must be total over arbitrary input.
func FuzzFrameRoundTrip(f *testing.F) {
	seedMsg := &lsu.Msg{From: 3, Ack: true, Entries: []lsu.Entry{
		{Op: lsu.OpAdd, Head: 1, Tail: 2, Cost: 0.5},
		{Op: lsu.OpDelete, Head: 9, Tail: 8},
	}}
	lf, err := NewLSU(seedMsg)
	if err != nil {
		f.Fatal(err)
	}
	lf.Seq = 12345
	for _, fr := range []*Frame{NewHello(7), NewHeartbeat(), NewBye(), lf, NewAck(9)} {
		buf, err := fr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0x4D, 0x52, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		out, err := fr.Encode()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, out) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, out)
		}
		// LSU payloads must decode into a well-formed message.
		if fr.Type == TypeLSU {
			if _, err := LSUMsg(fr); err != nil {
				t.Fatalf("accepted LSU frame with undecodable payload: %v", err)
			}
		}
	})
}
