package wire

import (
	"bytes"
	"testing"
)

// FuzzDataFrame fuzzes the data-packet payload codec directly (beneath
// the frame envelope, which FuzzFrameRoundTrip already covers): the
// decoder must be total over arbitrary bytes, and every payload it
// accepts must re-encode to the identical bytes — the canonical round
// trip that keeps forwarders from mutating packets they merely relay.
func FuzzDataFrame(f *testing.F) {
	seeds := []DataPacket{
		{Src: 0, Dst: 1, TTL: 32, FlowID: 1, SizeBits: 4096},
		{Src: 5, Dst: 2, TTL: 1, Hops: 31, FlowID: 0xffff_ffff_ffff_ffff, SentAt: 123.456, Accum: 0.031, SizeBits: 1},
		{Src: 9, Dst: 9, TTL: 8, FlowID: 0x42, SentAt: 0.001, Body: []byte("hello, mesh")},
		{Src: 25, Dst: 0, TTL: 64, Hops: 3, FlowID: 7, SentAt: 1e6, Accum: 2.5, SizeBits: 65535},
	}
	for i := range seeds {
		f.Add(AppendDataPayload(nil, &seeds[i]))
	}
	f.Add([]byte{})
	f.Add(make([]byte, DataHeaderBytes-1))
	f.Add(make([]byte, DataHeaderBytes+3))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var p DataPacket
		if err := DecodeDataPacket(&p, payload); err != nil {
			return
		}
		out := AppendDataPayload(nil, &p)
		if !bytes.Equal(payload, out) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", payload, out)
		}
		// An accepted payload must also frame and re-decode cleanly.
		fr, err := NewData(&p)
		if err != nil {
			t.Fatalf("accepted payload refused by NewData: %v", err)
		}
		buf, err := fr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decode(buf)
		if err != nil {
			t.Fatalf("framed data packet refused by Decode: %v", err)
		}
		if _, err := DataPacketOf(g); err != nil {
			t.Fatalf("accepted data frame with undecodable payload: %v", err)
		}
	})
}
