package wire

import (
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// benchMsg is a typical MPDA flood: a handful of changed links plus the
// protocol ACK flag.
func benchMsg() *lsu.Msg {
	m := &lsu.Msg{From: 5, Ack: true}
	for i := 0; i < 8; i++ {
		m.Entries = append(m.Entries, lsu.Entry{
			Op: lsu.OpChange, Head: graph.NodeID(i), Tail: graph.NodeID(i + 1), Cost: float64(i) * 0.125,
		})
	}
	return m
}

func BenchmarkFrameEncode(b *testing.B) {
	f, err := NewLSU(benchMsg())
	if err != nil {
		b.Fatal(err)
	}
	f.Seq = 99
	buf := make([]byte, 0, f.EncodedBytes())
	b.ReportAllocs()
	b.SetBytes(int64(f.EncodedBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := f.AppendEncode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	f, err := NewLSU(benchMsg())
	if err != nil {
		b.Fatal(err)
	}
	f.Seq = 99
	buf, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecodeInto is the ARQ receive path's scratch decode: a
// reused Frame, payload aliasing the datagram, zero allocations.
func BenchmarkFrameDecodeInto(b *testing.B) {
	f, err := NewLSU(benchMsg())
	if err != nil {
		b.Fatal(err)
	}
	f.Seq = 99
	buf, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var g Frame
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(&g, buf); err != nil {
			b.Fatal(err)
		}
	}
}
