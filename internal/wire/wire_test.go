package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

func testLSU(t *testing.T) *lsu.Msg {
	t.Helper()
	return &lsu.Msg{From: 7, Ack: true, Entries: []lsu.Entry{
		{Op: lsu.OpAdd, Head: 1, Tail: 2, Cost: 0.25},
		{Op: lsu.OpChange, Head: 2, Tail: 3, Cost: 1.5},
		{Op: lsu.OpDelete, Head: 3, Tail: 4},
	}}
}

func allFrames(t *testing.T) []*Frame {
	t.Helper()
	f, err := NewLSU(testLSU(t))
	if err != nil {
		t.Fatal(err)
	}
	f.Seq = 42
	return []*Frame{
		NewHello(3),
		NewHeartbeat(),
		NewBye(),
		f,
		NewAck(99),
	}
}

func TestRoundTrip(t *testing.T) {
	for _, f := range allFrames(t) {
		buf, err := f.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Type, err)
		}
		if len(buf) != f.EncodedBytes() {
			t.Fatalf("%s: encoded %d bytes, EncodedBytes says %d", f.Type, len(buf), f.EncodedBytes())
		}
		g, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		if g.Type != f.Type || g.Seq != f.Seq || !bytes.Equal(g.Payload, f.Payload) {
			t.Fatalf("%s: round trip changed frame: %+v vs %+v", f.Type, f, g)
		}
		again, err := g.Encode()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", f.Type, err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("%s: re-encode not canonical", f.Type)
		}
	}
}

func TestStreamFraming(t *testing.T) {
	frames := allFrames(t)
	var stream bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream.Bytes())
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d changed: %+v vs %+v", i, want, got)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	buf, err := NewHello(5).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		_, err := ReadFrame(bytes.NewReader(buf[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestDecodeRejections(t *testing.T) {
	lf, err := NewLSU(testLSU(t))
	if err != nil {
		t.Fatal(err)
	}
	good, err := lf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"empty", nil, "short frame"},
		{"short", good[:HeaderBytes], "short frame"},
		{"magic", corrupt(func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"version", corrupt(func(b []byte) { b[2] = 9 }), "version"},
		{"crc-flip", corrupt(func(b []byte) { b[HeaderBytes] ^= 0x40 }), "CRC"},
		{"trailing", append(append([]byte(nil), good...), 0), "trailing"},
		{"len-overflow", corrupt(func(b []byte) {
			binary.BigEndian.PutUint32(b[8:12], MaxPayload+1)
		}), "exceeds limit"},
		{"len-truncated", corrupt(func(b []byte) {
			binary.BigEndian.PutUint32(b[8:12], uint32(len(good)))
		}), "truncated"},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.buf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestValidatePerType pins the payload-shape rules: a frame whose payload
// does not match its type is rejected by both encoder and decoder.
func TestValidatePerType(t *testing.T) {
	bad := []*Frame{
		{Type: TypeHello, Payload: []byte{1, 2, 3}},                // wrong size
		{Type: TypeHello, Payload: []byte{0xff, 0, 0, 0}},          // negative node
		{Type: TypeHeartbeat, Payload: []byte{1}},                  // non-empty
		{Type: TypeBye, Payload: []byte{1}},                        // non-empty
		{Type: TypeAck, Payload: []byte{1}},                        // non-empty
		{Type: TypeLSU, Payload: []byte{0, 0}},                     // short lsu
		{Type: Type(0)},                                            // unknown
		{Type: Type(200)},                                          // unknown
		{Type: TypeHeartbeat, Payload: make([]byte, MaxPayload+1)}, // oversized
	}
	for _, f := range bad {
		if _, err := f.Encode(); err == nil {
			t.Errorf("encode accepted invalid frame %s/%d bytes", f.Type, len(f.Payload))
		}
	}
	// A hand-built buffer with a valid CRC but an invalid type/payload pair
	// must still be rejected by Decode.
	raw := make([]byte, HeaderBytes+1)
	binary.BigEndian.PutUint16(raw[0:2], Magic)
	raw[2] = Version
	raw[3] = byte(TypeHeartbeat)
	binary.BigEndian.PutUint32(raw[8:12], 1)
	raw[HeaderBytes] = 0xAB
	sum := crc32.Checksum(raw, castagnoli)
	raw = append(raw, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	if _, err := Decode(raw); err == nil || !strings.Contains(err.Error(), "empty payload") {
		t.Errorf("decode accepted heartbeat with payload: %v", err)
	}
}

func TestHelpers(t *testing.T) {
	id, err := HelloNode(NewHello(12))
	if err != nil || id != 12 {
		t.Fatalf("HelloNode = %d, %v", id, err)
	}
	if _, err := HelloNode(NewBye()); err == nil {
		t.Fatal("HelloNode accepted a bye frame")
	}
	m := testLSU(t)
	f, err := NewLSU(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LSUMsg(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || got.Ack != m.Ack || len(got.Entries) != len(m.Entries) {
		t.Fatalf("LSU round trip changed message: %+v vs %+v", m, got)
	}
	if _, err := LSUMsg(NewHeartbeat()); err == nil {
		t.Fatal("LSUMsg accepted a heartbeat")
	}
	if NewAck(7).Seq != 7 {
		t.Fatal("NewAck did not store the cumulative seq")
	}
	if s := TypeHello.String(); s != "hello" {
		t.Fatalf("TypeHello.String() = %q", s)
	}
	if s := Type(77).String(); !strings.Contains(s, "77") {
		t.Fatalf("unknown type String() = %q", s)
	}
	if id, err := HelloNode(&Frame{Type: TypeHello}); err == nil {
		t.Fatalf("HelloNode accepted empty hello, id %d", id)
	}
}

func TestHelloNodeRange(t *testing.T) {
	for _, id := range []graph.NodeID{0, 1, 1 << 20} {
		got, err := HelloNode(NewHello(id))
		if err != nil || got != id {
			t.Fatalf("hello(%d) round trip = %d, %v", id, got, err)
		}
	}
}
