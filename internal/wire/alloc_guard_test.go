package wire

import (
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// TestCodecAllocBudget is the codec-overhead guard wired into `make check`
// (codec-guard target): the live transport's per-frame costs are pinned so
// the hot path cannot silently regrow allocations.
//
//   - AppendEncode into a reused buffer: 0 allocs/op (the send path
//     encodes every frame into its window slot),
//   - DecodeInto with a reused Frame: 0 allocs/op (the receive path
//     decodes every datagram into scratch, payloads aliasing the
//     datagram buffer),
//   - Decode: ≤1 alloc/op (only the returned *Frame itself).
//
// Like the telemetry guard, this test relies on testing.AllocsPerRun and
// must run without -race (alloc accounting is unreliable under the race
// detector), which is why the Makefile invokes it in a separate
// non-race target.
func TestCodecAllocBudget(t *testing.T) {
	m := &lsu.Msg{From: 5, Ack: true}
	for i := 0; i < 8; i++ {
		m.Entries = append(m.Entries, lsu.Entry{
			Op: lsu.OpChange, Head: graph.NodeID(i), Tail: graph.NodeID(i + 1), Cost: float64(i) * 0.125,
		})
	}
	f, err := NewLSU(m)
	if err != nil {
		t.Fatal(err)
	}
	f.Seq = 99
	wireBytes, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 0, f.EncodedBytes())
	if n := testing.AllocsPerRun(200, func() {
		out, err := f.AppendEncode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}); n != 0 {
		t.Errorf("AppendEncode into reused buffer: %.1f allocs/op, want 0", n)
	}

	var g Frame
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(&g, wireBytes); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeInto reused frame: %.1f allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, err := Decode(wireBytes); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("Decode: %.1f allocs/op, want <=1", n)
	}

	// The coalesced-datagram walk must stay alloc-free per frame too.
	co := append(append([]byte(nil), wireBytes...), wireBytes...)
	if n := testing.AllocsPerRun(200, func() {
		rest := co
		for len(rest) > 0 {
			used, err := DecodeSome(&g, rest)
			if err != nil {
				t.Fatal(err)
			}
			rest = rest[used:]
		}
	}); n != 0 {
		t.Errorf("DecodeSome walk: %.1f allocs/op, want 0", n)
	}
}
