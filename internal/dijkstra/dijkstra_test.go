package dijkstra

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/graph"
	"minroute/internal/rng"
)

// adjView is a simple explicit adjacency for tests.
type adjView struct {
	n   int
	out map[graph.NodeID][]edge
}

type edge struct {
	to   graph.NodeID
	cost float64
}

func (a adjView) NumNodes() int { return a.n }
func (a adjView) VisitOut(u graph.NodeID, visit func(graph.NodeID, float64)) {
	for _, e := range a.out[u] {
		visit(e.to, e.cost)
	}
}

func mkView(n int, edges ...[3]float64) adjView {
	v := adjView{n: n, out: make(map[graph.NodeID][]edge)}
	for _, e := range edges {
		from := graph.NodeID(e[0])
		v.out[from] = append(v.out[from], edge{to: graph.NodeID(e[1]), cost: e[2]})
	}
	return v
}

func TestLine(t *testing.T) {
	v := mkView(3, [3]float64{0, 1, 2}, [3]float64{1, 2, 3})
	r := Run(v, 0)
	if r.Dist[2] != 5 {
		t.Fatalf("dist[2] = %v, want 5", r.Dist[2])
	}
	if r.Parent[2] != 1 || r.Parent[1] != 0 {
		t.Fatalf("parents wrong: %v", r.Parent)
	}
}

func TestUnreachable(t *testing.T) {
	v := mkView(3, [3]float64{0, 1, 1})
	r := Run(v, 0)
	if r.Reachable(2) {
		t.Fatal("node 2 should be unreachable")
	}
	if !math.IsInf(r.Dist[2], 1) {
		t.Fatalf("dist[2] = %v, want +Inf", r.Dist[2])
	}
	if r.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) not nil")
	}
	if r.NextHop(2) != graph.None {
		t.Fatal("NextHop(unreachable) not None")
	}
}

func TestShorterOfTwoPaths(t *testing.T) {
	// 0->1->3 costs 2; 0->2->3 costs 10.
	v := mkView(4,
		[3]float64{0, 1, 1}, [3]float64{1, 3, 1},
		[3]float64{0, 2, 5}, [3]float64{2, 3, 5})
	r := Run(v, 0)
	if r.Dist[3] != 2 {
		t.Fatalf("dist[3] = %v, want 2", r.Dist[3])
	}
	path := r.PathTo(3)
	want := []graph.NodeID{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestTieBreakLowestParent(t *testing.T) {
	// Two equal-cost paths to 3: via 1 and via 2. Parent must be 1.
	v := mkView(4,
		[3]float64{0, 2, 1}, [3]float64{2, 3, 1},
		[3]float64{0, 1, 1}, [3]float64{1, 3, 1})
	r := Run(v, 0)
	if r.Dist[3] != 2 {
		t.Fatalf("dist[3] = %v, want 2", r.Dist[3])
	}
	if r.Parent[3] != 1 {
		t.Fatalf("parent[3] = %v, want 1 (lowest-address tie-break)", r.Parent[3])
	}
}

func TestNextHop(t *testing.T) {
	v := mkView(4, [3]float64{0, 1, 1}, [3]float64{1, 2, 1}, [3]float64{2, 3, 1})
	r := Run(v, 0)
	for _, dst := range []graph.NodeID{1, 2, 3} {
		if nh := r.NextHop(dst); nh != 1 {
			t.Fatalf("NextHop(%d) = %v, want 1", dst, nh)
		}
	}
	if r.NextHop(0) != graph.None {
		t.Fatal("NextHop(src) should be None")
	}
}

func TestZeroCostLinks(t *testing.T) {
	v := mkView(3, [3]float64{0, 1, 0}, [3]float64{1, 2, 0})
	r := Run(v, 0)
	if r.Dist[2] != 0 {
		t.Fatalf("dist[2] = %v, want 0", r.Dist[2])
	}
}

func TestNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost did not panic")
		}
	}()
	Run(mkView(2, [3]float64{0, 1, -1}), 0)
}

func TestTreeLinksFormTree(t *testing.T) {
	v := mkView(5,
		[3]float64{0, 1, 1}, [3]float64{0, 2, 4},
		[3]float64{1, 2, 1}, [3]float64{1, 3, 6},
		[3]float64{2, 3, 1}, [3]float64{3, 4, 1})
	r := Run(v, 0)
	links := r.TreeLinks()
	if len(links) != 4 { // 4 reachable non-root nodes
		t.Fatalf("tree has %d links, want 4", len(links))
	}
	seen := map[graph.NodeID]bool{}
	for _, l := range links {
		if seen[l[1]] {
			t.Fatalf("node %d has two parents", l[1])
		}
		seen[l[1]] = true
	}
}

func TestGraphView(t *testing.T) {
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	if err := g.AddDuplex(a, b, 1e6, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDuplex(b, c, 1e6, 0.002); err != nil {
		t.Fatal(err)
	}
	r := Run(GraphView{G: g, Cost: func(l *graph.Link) float64 { return l.PropDelay }}, a)
	if got, want := r.Dist[c], 0.003; math.Abs(got-want) > 1e-12 {
		t.Fatalf("dist[c] = %v, want %v", got, want)
	}
}

// bellmanFord is an independent reference implementation for property tests.
func bellmanFord(v View, src graph.NodeID) []float64 {
	n := v.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			v.VisitOut(graph.NodeID(u), func(to graph.NodeID, c float64) {
				if nd := dist[u] + c; nd < dist[to] {
					dist[to] = nd
					changed = true
				}
			})
		}
		if !changed {
			break
		}
	}
	return dist
}

func randomView(seed uint64, n int) adjView {
	r := rng.New(seed)
	v := adjView{n: n, out: make(map[graph.NodeID][]edge)}
	for u := 0; u < n; u++ {
		deg := 1 + r.Intn(3)
		for d := 0; d < deg; d++ {
			to := graph.NodeID(r.Intn(n))
			if int(to) == u {
				continue
			}
			v.out[graph.NodeID(u)] = append(v.out[graph.NodeID(u)],
				edge{to: to, cost: float64(1+r.Intn(100)) / 10})
		}
	}
	return v
}

func TestPropertyMatchesBellmanFord(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%20) + 2
		v := randomView(seed, n)
		src := graph.NodeID(int(seed) % n)
		if src < 0 {
			src = -src
		}
		d := Run(v, src)
		bf := bellmanFord(v, src)
		for i := range bf {
			a, b := d.Dist[i], bf[i]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				return false
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParentDistancesConsistent(t *testing.T) {
	// dist[child] >= dist[parent], and each reachable non-src node's path
	// terminates at src.
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%20) + 2
		v := randomView(seed, n)
		d := Run(v, 0)
		for i := 0; i < n; i++ {
			id := graph.NodeID(i)
			if !d.Reachable(id) || id == 0 {
				continue
			}
			p := d.Parent[id]
			if p == graph.None || d.Dist[id] < d.Dist[p] {
				return false
			}
			path := d.PathTo(id)
			if len(path) == 0 || path[0] != 0 || path[len(path)-1] != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstra64(b *testing.B) {
	v := randomView(99, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(v, 0)
	}
}
