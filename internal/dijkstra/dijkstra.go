// Package dijkstra implements Dijkstra's shortest-path-first algorithm with
// the deterministic tie-breaking the paper requires: "because there are
// potentially many shortest-path trees, ties should be broken consistently
// during the run of Dijkstra's algorithm". Ties are broken in favor of the
// lower-address parent, matching the "lowest address neighbor" convention
// used throughout PDA and MPDA.
//
// The algorithm consumes an abstract adjacency view so that it can run both
// on the ground-truth topology (internal/graph) and on the partial topology
// tables routers assemble from LSU messages (internal/pda).
package dijkstra

import (
	"math"

	"minroute/internal/graph"
)

// Inf is the distance assigned to unreachable nodes.
var Inf = math.Inf(1)

// View is the read-only weighted-graph interface Dijkstra consumes.
type View interface {
	// NumNodes returns the size of the ID space; node IDs are dense in
	// [0, NumNodes).
	NumNodes() int
	// VisitOut calls visit for every outgoing link u->v with cost c.
	// Costs must be non-negative.
	VisitOut(u graph.NodeID, visit func(v graph.NodeID, cost float64))
}

// Result holds single-source shortest-path distances and the shortest-path
// tree, indexed densely by NodeID.
type Result struct {
	Src    graph.NodeID
	Dist   []float64
	Parent []graph.NodeID
}

// Run computes shortest paths from src over the view.
func Run(v View, src graph.NodeID) *Result {
	n := v.NumNodes()
	res := &Result{
		Src:    src,
		Dist:   make([]float64, n),
		Parent: make([]graph.NodeID, n),
	}
	for i := range res.Dist {
		res.Dist[i] = Inf
		res.Parent[i] = graph.None
	}
	if int(src) < 0 || int(src) >= n {
		return res
	}
	res.Dist[src] = 0

	// Lazy-deletion binary heap: duplicates allowed, finalized nodes skipped.
	h := &distHeap{}
	h.push(item{node: src, dist: 0})
	done := make([]bool, n)
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		du := res.Dist[u]
		v.VisitOut(u, func(to graph.NodeID, cost float64) {
			if cost < 0 {
				panic("dijkstra: negative link cost")
			}
			if done[to] {
				return
			}
			nd := du + cost
			switch {
			case nd < res.Dist[to]:
				res.Dist[to] = nd
				res.Parent[to] = u
				h.push(item{node: to, dist: nd})
			//lint:floateq-ok exact FP tie only; a tolerant tie here would re-parent across genuinely different path sums
			case nd == res.Dist[to] && u < res.Parent[to]:
				// Equal-cost path through a lower-address parent wins;
				// the distance is unchanged so no re-push is needed.
				res.Parent[to] = u
			}
		})
	}
	return res
}

// Reachable reports whether id has a finite distance.
func (r *Result) Reachable(id graph.NodeID) bool {
	return int(id) >= 0 && int(id) < len(r.Dist) && !math.IsInf(r.Dist[id], 1)
}

// PathTo returns the node sequence src..id along the shortest-path tree,
// or nil when id is unreachable.
func (r *Result) PathTo(id graph.NodeID) []graph.NodeID {
	if !r.Reachable(id) {
		return nil
	}
	var rev []graph.NodeID
	for at := id; at != graph.None; at = r.Parent[at] {
		rev = append(rev, at)
		if at == r.Src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TreeLinks returns the (parent, child) pairs of the shortest-path tree.
func (r *Result) TreeLinks() [][2]graph.NodeID {
	var out [][2]graph.NodeID
	for id, p := range r.Parent {
		if p != graph.None {
			out = append(out, [2]graph.NodeID{p, graph.NodeID(id)})
		}
	}
	return out
}

// NextHop returns the first hop from src toward id along the tree, or
// graph.None when unreachable or id == src.
func (r *Result) NextHop(id graph.NodeID) graph.NodeID {
	if !r.Reachable(id) || id == r.Src {
		return graph.None
	}
	at := id
	for r.Parent[at] != r.Src {
		at = r.Parent[at]
		if at == graph.None {
			return graph.None
		}
	}
	return at
}

type item struct {
	node graph.NodeID
	dist float64
}

type distHeap struct{ items []item }

func (h *distHeap) len() int { return len(h.items) }

func (h *distHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	//lint:floateq-ok heap comparators need a strict weak order; tolerant equality is not transitive
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	// Pop lower-address nodes first among equals so parent updates settle
	// deterministically.
	return a.node < b.node
}

func (h *distHeap) push(it item) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *distHeap) pop() item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		min := left
		if right := left + 1; right < last && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top
}

// GraphView adapts internal/graph.Graph plus a cost function to the View
// interface. Cost returns the routing cost of a link (typically its marginal
// delay); it must be non-negative.
type GraphView struct {
	G    *graph.Graph
	Cost func(l *graph.Link) float64
}

// NumNodes implements View.
func (gv GraphView) NumNodes() int { return gv.G.NumNodes() }

// VisitOut implements View.
func (gv GraphView) VisitOut(u graph.NodeID, visit func(graph.NodeID, float64)) {
	for _, l := range gv.G.OutLinks(u) {
		visit(l.To, gv.Cost(l))
	}
}
