package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureMain runs main with stdout redirected and returns what it printed;
// a log.Fatalf inside the example fails the whole package, which is the
// intended smoke-test behavior.
func captureMain(t *testing.T) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- string(buf)
	}()
	main()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestFailoverRuns(t *testing.T) {
	out := captureMain(t)
	for _, want := range []string{
		"loop-freedom audit after warmup:",
		"loop-freedom audit right after failure:",
		"loop-freedom audit after reconvergence:",
		"loop-freedom audit after recovery:",
		"the failure cost capacity, never correctness",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}
