// Failover: exercise the property single-path routing lacks — instantly
// usable alternate paths. One of NET1's two bridge links fails mid-run;
// MPDA reconverges loop-free (Theorem 3 audited before, during, and after)
// and the flows keep being delivered over the surviving bridge.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"minroute/internal/core"
	"minroute/internal/topo"
)

func main() {
	network := topo.NET1()
	opt := core.DefaultOptions()
	opt.Seed = 5
	sim := core.Build(network, opt)
	sim.Start()

	audit := func(when string) {
		if err := sim.CheckLoopFree(); err != nil {
			log.Fatalf("%s: %v", when, err)
		}
		fmt.Printf("  loop-freedom audit %-22s OK\n", when)
	}

	fmt.Println("phase 1: converge and warm up (40 s)")
	sim.Eng.Run(40)
	audit("after warmup:")

	window := func(label string, until float64) {
		for _, s := range sim.Stats {
			s.Reset()
		}
		sim.Eng.Run(until)
		rep := sim.Report()
		delivered := int64(0)
		for _, d := range rep.Delivered {
			delivered += d
		}
		fmt.Printf("  %-26s mean=%8.3f ms  delivered=%8d  drops(no-route)=%d\n",
			label, rep.AvgMeanDelayMs(), delivered, rep.DropsNoRoute)
	}

	window("baseline (both bridges):", 60)

	fmt.Println("phase 2: bridge link 4-5 fails")
	sim.FailLink(4, 5)
	audit("right after failure:")
	window("degraded (one bridge):", 90)
	audit("after reconvergence:")

	fmt.Println("phase 3: bridge link 4-5 recovers")
	sim.RestoreLink(4, 5)
	window("recovered:", 120)
	audit("after recovery:")

	fmt.Println("\nevery packet that was delivered traversed only loop-free")
	fmt.Println("successor sets; the failure cost capacity, never correctness")
}
