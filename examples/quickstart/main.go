// Quickstart: build the paper's NET1 topology, run the near-optimal
// multipath routing framework (MPDA + IH/AH load balancing) on a packet
// simulation, and print per-flow average delays.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"minroute/internal/core"
	"minroute/internal/topo"
)

func main() {
	// NET1: ten routers, two 4-cliques joined by a two-link bridge, ten
	// flows of 1-3 Mb/s (Section 5 of the paper).
	network := topo.NET1()

	// Default options are the paper's MP-TL-10-TS-2 configuration:
	// long-term route updates every 10 s, local load-balancing every 2 s.
	opt := core.DefaultOptions()
	opt.Warmup = 40   // let the protocol and queues reach steady state
	opt.Duration = 20 // measurement period
	opt.Seed = 7

	sim := core.Build(network, opt)
	rep := sim.Run()

	fmt.Println("MP (multipath minimum-delay approximation) on NET1:")
	fmt.Print(rep)
	fmt.Printf("average of per-flow means: %.3f ms\n", rep.AvgMeanDelayMs())
	fmt.Printf("loss rate: %.5f, LSU messages: %d\n", rep.LossRate(), rep.ControlMessages)

	// The headline safety property — Theorem 3: the successor graphs are
	// loop-free at every instant — is auditable at any time.
	if err := sim.CheckLoopFree(); err != nil {
		log.Fatalf("loop-freedom violated: %v", err)
	}
	fmt.Println("loop-freedom audit: OK")
}
