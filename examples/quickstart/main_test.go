package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureMain runs main with stdout redirected to a pipe and returns what it
// printed. A failure inside the example exits the test binary (the examples
// use log.Fatalf), which go test reports as the package failing — exactly
// what a smoke test wants.
func captureMain(t *testing.T) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- string(buf)
	}()
	main()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestQuickstartRuns(t *testing.T) {
	out := captureMain(t)
	for _, want := range []string{"MP (multipath minimum-delay approximation) on NET1:",
		"loss rate: 0.00000", "loop-freedom audit: OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}
