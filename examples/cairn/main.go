// CAIRN backbone comparison: the experiment at the heart of the paper's
// evaluation. Runs three routing schemes on the CAIRN research-network
// topology under identical traffic and prints the per-flow delay table:
//
//   - OPT: Gallager's minimum-delay routing, solved on the fluid model and
//     evaluated in the packet simulator (the delay lower bound);
//
//   - MP:  the paper's near-optimal framework (MPDA + IH/AH);
//
//   - SP:  single shortest-path routing (what OSPF-style protocols give).
//
//     go run ./examples/cairn
package main

import (
	"fmt"
	"log"

	"minroute/internal/core"
	"minroute/internal/gallager"
	"minroute/internal/router"
	"minroute/internal/topo"
)

func run(mode router.Mode, static bool) *core.Report {
	network := topo.CAIRN()
	opt := core.DefaultOptions()
	opt.Router.Mode = mode
	opt.Warmup = 60
	opt.Duration = 30
	if mode == router.ModeSP {
		opt.Router.Ts = opt.Router.Tl // SP has no short-term updates
	}
	sim := core.Build(network, opt)
	if static {
		sol, err := gallager.Solve(network.Graph, network.Flows, gallager.Options{MeanPacketBits: 8000})
		if err != nil {
			log.Fatalf("OPT solve: %v", err)
		}
		fmt.Printf("OPT converged in %d iterations, D_T=%.4f\n", sol.Iterations, sol.TotalDelay)
		sim.InstallStatic(sol.Phi)
	}
	return sim.Run()
}

func main() {
	optRep := run(router.ModeStatic, true)
	mpRep := run(router.ModeMP, false)
	spRep := run(router.ModeSP, false)

	fmt.Printf("\n%-20s %10s %10s %10s %10s\n", "flow", "OPT(ms)", "MP(ms)", "SP(ms)", "SP/MP")
	for x, name := range optRep.FlowNames {
		fmt.Printf("%-20s %10.3f %10.3f %10.3f %10.2f\n",
			name, optRep.MeanDelayMs[x], mpRep.MeanDelayMs[x], spRep.MeanDelayMs[x],
			spRep.MeanDelayMs[x]/mpRep.MeanDelayMs[x])
	}
	fmt.Printf("%-20s %10.3f %10.3f %10.3f\n", "mean",
		optRep.AvgMeanDelayMs(), mpRep.AvgMeanDelayMs(), spRep.AvgMeanDelayMs())
	fmt.Println("\npaper shape: OPT <= MP << SP, MP within a small percentage of OPT")
}
