// Protocols: compare the two loop-free multipath protocols this library
// implements — MPDA (link-state, the paper's contribution) and DVMP (the
// same Loop-Free Invariant framework applied to a distance-vector
// algorithm) — on convergence cost: messages exchanged until quiescence on
// the paper's topologies, from cold start and after a link failure. Both
// converge to identical successor sets (verified here).
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"minroute/internal/dvmp"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/mpda"
	"minroute/internal/protonet"
	"minroute/internal/topo"
)

// proto abstracts the two router families for this comparison.
type proto interface {
	protonet.Node
	lfi.RouterView
	Dist(j graph.NodeID) float64
}

func build(g *graph.Graph, kind string, seed uint64) (*protonet.Net, map[graph.NodeID]proto) {
	net := protonet.New(g, seed)
	routers := make(map[graph.NodeID]proto)
	for _, id := range g.Nodes() {
		var r proto
		switch kind {
		case "mpda":
			r = mpda.NewRouter(id, g.NumNodes(), net.Sender(id))
		case "dvmp":
			r = dvmp.NewRouter(id, g.NumNodes(), net.Sender(id))
		}
		routers[id] = r
		net.Attach(id, r)
	}
	net.BringUpAll(func(l *graph.Link) float64 { return l.PropDelay + 1e-4 })
	return net, routers
}

func main() {
	fmt.Printf("%-8s %-8s %14s %16s\n", "topology", "protocol", "cold-start msgs", "post-failure msgs")
	for _, tc := range []struct {
		name  string
		build func() *topo.Network
		fail  [2]graph.NodeID
	}{
		{"NET1", topo.NET1, [2]graph.NodeID{4, 5}},
		{"CAIRN", topo.CAIRN, [2]graph.NodeID{0, 2}},
	} {
		results := map[string]map[graph.NodeID]proto{}
		for _, kind := range []string{"mpda", "dvmp"} {
			g := tc.build().Graph
			net, routers := build(g, kind, 11)
			cold := net.Run(5000000)
			net.FailLink(tc.fail[0], tc.fail[1])
			after := net.Run(5000000)
			fmt.Printf("%-8s %-8s %14d %16d\n", tc.name, kind, cold, after)
			results[kind] = routers
		}
		// Both protocols must agree on every successor set at convergence.
		g := tc.build().Graph
		g.RemoveLink(tc.fail[0], tc.fail[1])
		g.RemoveLink(tc.fail[1], tc.fail[0])
		for _, id := range g.Nodes() {
			for j := 0; j < g.NumNodes(); j++ {
				a := results["mpda"][id].Successors(graph.NodeID(j))
				b := results["dvmp"][id].Successors(graph.NodeID(j))
				if len(a) != len(b) {
					log.Fatalf("%s: router %d dest %d: MPDA %v vs DVMP %v", tc.name, id, j, a, b)
				}
				for x := range a {
					if a[x] != b[x] {
						log.Fatalf("%s: router %d dest %d: MPDA %v vs DVMP %v", tc.name, id, j, a, b)
					}
				}
			}
		}
		fmt.Printf("%-8s successor sets identical across protocols: OK\n\n", tc.name)
	}
	fmt.Println("same loop-free multipath routes; different state/message trade-offs")
}
