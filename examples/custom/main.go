// Custom: define your own network in the text scenario format, simulate it
// under multipath routing, and inspect where individual packets actually
// went using the path tracer.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"strings"

	"minroute/internal/core"
	"minroute/internal/topo"
)

// scenario is a six-node dumbbell: two hosts on each side, two parallel
// middle links of different capacities, cross traffic both ways.
const scenario = `
# west side
link w1 wgw 100Mbps 0.1ms
link w2 wgw 100Mbps 0.1ms
# two parallel middle links: a fat one and a thin one
link wgw egw 10Mbps 1ms
link wgw mid 10Mbps  0.6ms   # detour adds a hop...
link mid egw 10Mbps  0.6ms   # ...but doubles the cut capacity
# east side
link e1 egw 100Mbps 0.1ms
link e2 egw 100Mbps 0.1ms

flow w1 e1 6Mbps
flow w2 e2 6Mbps
flow e1 w2 3Mbps
`

func main() {
	net, err := topo.Parse(strings.NewReader(scenario))
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Warmup, opt.Duration = 40, 20
	opt.Seed = 9
	opt.TraceCapacity = 5000 // record recent packet paths

	sim := core.Build(net, opt)
	rep := sim.Run()
	if err := sim.CheckLoopFree(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("custom dumbbell under MP routing:")
	fmt.Print(rep)
	fmt.Printf("reordering fractions:")
	for x := range rep.FlowNames {
		fmt.Printf(" %s=%.4f", rep.FlowNames[x], rep.Reordered[x])
	}
	fmt.Println()

	// The 12 Mb/s of eastbound demand cannot fit the 10 Mb/s direct middle
	// link; the tracer shows packets of the same flow taking both the
	// direct link and the mid detour.
	delivered, withRevisit, maxHops := sim.Tracer.Audit()
	fmt.Printf("\ntraced %d delivered packets, %d with node revisits, longest path %d hops\n",
		delivered, withRevisit, maxHops)

	direct, detour := 0, 0
	mid := net.Graph.MustLookup("mid")
	for _, p := range sim.Tracer.Paths() {
		if !p.Delivered || p.FlowID != 0 {
			continue
		}
		viaMid := false
		for _, h := range p.Hops {
			if h.Node == mid {
				viaMid = true
			}
		}
		if viaMid {
			detour++
		} else {
			direct++
		}
	}
	fmt.Printf("flow w1->e1 path usage: %d direct, %d via mid detour\n", direct, detour)
	if detour == 0 {
		fmt.Println("(unexpected: multipath did not engage the detour)")
	} else {
		fmt.Println("unequal-cost multipath in action: one flow, two concurrent paths")
	}
}
