// Dynamic traffic: the scenario the paper's introduction motivates —
// "traffic is very bursty at any time scale" — where optimal routing is
// unusable and single-path routing reacts too slowly. On-off sources send
// 4x-rate bursts; MP's short-term load balancing (heuristic AH every Ts)
// absorbs them on alternate loop-free paths, SP cannot.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/router"
	"minroute/internal/topo"
	"minroute/internal/traffic"
)

func run(mode router.Mode, peak float64) *core.Report {
	network := topo.NET1()
	opt := core.DefaultOptions()
	opt.Router.Mode = mode
	opt.Warmup = 40
	opt.Duration = 30
	opt.Seed = 3
	opt.Source = func(f topo.Flow) traffic.Source {
		return traffic.OnOff{
			RateBits:       f.Rate,
			MeanPacketBits: 8000,
			PeakFactor:     peak,
			MeanOn:         0.25,
		}
	}
	return core.Build(network, opt).Run()
}

func main() {
	fmt.Println("NET1 under on-off bursty sources (average rates unchanged)")
	fmt.Printf("\n%-12s %14s %14s %10s\n", "burstiness", "MP mean (ms)", "SP mean (ms)", "SP/MP")
	for _, peak := range []float64{2, 4, 6} {
		mp := run(router.ModeMP, peak)
		sp := run(router.ModeSP, peak)
		fmt.Printf("peak=%-6.0fx %14.3f %14.3f %10.2f\n",
			peak, mp.AvgMeanDelayMs(), sp.AvgMeanDelayMs(),
			sp.AvgMeanDelayMs()/mp.AvgMeanDelayMs())
	}
	fmt.Println("\nthe MP advantage grows with burst intensity: local AH shifts")
	fmt.Println("bursts onto alternate loop-free paths within one Ts interval")
}
