module minroute

go 1.22
